// Package stats bundles the randomness and summary-statistics utilities the
// CA-SC experiments rely on: seeded RNG construction, the paper's truncated
// Gaussian sampler mapped onto arbitrary ranges, categorical sampling without
// replacement, and running aggregates for experiment reporting.
package stats

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic *rand.Rand seeded with seed. Every
// generator in this repository threads an explicit RNG so experiments are
// reproducible run to run.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// TruncGaussian draws a sample from the Gaussian N(0, sigma^2) truncated to
// [-1, 1] and linearly maps it to [lo, hi]. This is exactly the procedure in
// §VI-A of the paper ("we linearly map data samples within [−1,1] of a
// Gaussian distribution N(0, 0.2^2) to a target range"): worker speeds and
// working radii are drawn this way. The function panics if lo > hi.
func TruncGaussian(r *rand.Rand, lo, hi, sigma float64) float64 {
	if lo > hi {
		panic("stats: TruncGaussian range inverted")
	}
	if lo == hi {
		return lo
	}
	var z float64
	for {
		z = r.NormFloat64() * sigma
		if z >= -1 && z <= 1 {
			break
		}
	}
	// Map [-1,1] -> [lo,hi].
	return lo + (z+1)/2*(hi-lo)
}

// PaperSigma is the standard deviation the paper uses for all truncated
// Gaussian draws (N(0, 0.2^2)).
const PaperSigma = 0.2

// GaussianPoint draws a 2D sample from the isotropic Gaussian centered at
// (cx, cy) with the given standard deviation, clamped into [0,1]^2. The
// SKEW workload places 80% of locations in such a cluster.
func GaussianPoint(r *rand.Rand, cx, cy, sigma float64) (x, y float64) {
	x = clamp01(cx + r.NormFloat64()*sigma)
	y = clamp01(cy + r.NormFloat64()*sigma)
	return x, y
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns the full permutation of [0, n). The result
// order is random.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	perm := r.Perm(n)
	if k > n {
		k = n
	}
	return perm[:k]
}

// Shuffle permutes s in place using r.
func Shuffle[T any](r *rand.Rand, s []T) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// ZipfSizes draws n positive integer sizes from a bounded Zipf-like
// distribution with exponent s over {1, ..., max}. It is used by the
// synthetic Meetup generator to produce heavy-tailed group sizes, which in
// turn produce the heavy-tailed co-group Jaccard distribution observed on
// event-based social networks.
func ZipfSizes(r *rand.Rand, n int, s float64, max int) []int {
	if n <= 0 {
		return nil
	}
	if max < 1 {
		max = 1
	}
	// Precompute the CDF of P(k) ∝ k^-s for k in 1..max.
	cdf := make([]float64, max)
	total := 0.0
	for k := 1; k <= max; k++ {
		total += math.Pow(float64(k), -s)
		cdf[k-1] = total
	}
	out := make([]int, n)
	for i := range out {
		u := r.Float64() * total
		// Binary search the CDF.
		lo, hi := 0, max-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo + 1
	}
	return out
}

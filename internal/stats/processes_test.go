package stats

import (
	"math"
	"testing"
)

// moments returns the empirical mean and variance of draws from f.
func moments(n int, f func() float64) (mean, variance float64) {
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := f()
		sum += v
		sq += v * v
	}
	mean = sum / float64(n)
	variance = sq/float64(n) - mean*mean
	return mean, variance
}

// TestPoissonMoments pins the Poisson sampler's empirical mean and
// variance (both λ in closed form) at fixed seeds, including a rate large
// enough to exercise the recursive splitting path.
func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 1200} {
		r := NewRNG(17)
		const n = 20000
		mean, variance := moments(n, func() float64 { return float64(Poisson(r, lambda)) })
		tol := 4 * math.Sqrt(lambda/n) // ~4σ of the sample mean
		if math.Abs(mean-lambda) > tol+0.02*lambda {
			t.Errorf("Poisson(%v): mean %v, want %v ± %v", lambda, mean, lambda, tol+0.02*lambda)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+tol {
			t.Errorf("Poisson(%v): variance %v, want %v (±10%%)", lambda, variance, lambda)
		}
	}
	if got := Poisson(NewRNG(1), 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(NewRNG(1), -3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
}

// TestGammaMoments pins Gamma(k, θ) against the closed forms mean = kθ and
// variance = kθ², covering both the direct Marsaglia–Tsang branch (k ≥ 1)
// and the boosted branch (k < 1).
func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0}, // heavy-tailed boost branch
		{1.0, 1.0}, // exponential
		{2.5, 0.4},
		{9.0, 1.5},
	}
	for _, c := range cases {
		r := NewRNG(23)
		const n = 40000
		mean, variance := moments(n, func() float64 { return Gamma(r, c.shape, c.scale) })
		wantMean := GammaMean(c.shape, c.scale)
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean {
			t.Errorf("Gamma(%v,%v): mean %v, want %v ±3%%", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.12*wantVar {
			t.Errorf("Gamma(%v,%v): variance %v, want %v ±12%%", c.shape, c.scale, variance, wantVar)
		}
	}
	if got := Gamma(NewRNG(1), 0, 1); got != 0 {
		t.Errorf("Gamma(0,1) = %v, want 0", got)
	}
}

// TestWeibullMoments pins Weibull(k, λ) against the closed forms
// mean = λΓ(1+1/k) and variance = λ²(Γ(1+2/k) − Γ(1+1/k)²).
func TestWeibullMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{0.7, 1.0}, // heavy-tailed
		{1.0, 2.0}, // exponential
		{2.0, 1.5},
	}
	for _, c := range cases {
		r := NewRNG(29)
		const n = 60000
		mean, variance := moments(n, func() float64 { return Weibull(r, c.shape, c.scale) })
		wantMean := WeibullMean(c.shape, c.scale)
		g1 := math.Gamma(1 + 1/c.shape)
		wantVar := c.scale * c.scale * (math.Gamma(1+2/c.shape) - g1*g1)
		if math.Abs(mean-wantMean) > 0.03*wantMean {
			t.Errorf("Weibull(%v,%v): mean %v, want %v ±3%%", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("Weibull(%v,%v): variance %v, want %v ±15%%", c.shape, c.scale, variance, wantVar)
		}
	}
	if got := Weibull(NewRNG(1), 1, 0); got != 0 {
		t.Errorf("Weibull(1,0) = %v, want 0", got)
	}
}

// TestRenewalCountUnitMean checks that counting unit-mean renewals in a
// window of length λ recovers a mean count near λ for each interarrival
// family, and that the heavy-tailed shapes are overdispersed relative to
// the exponential (variance strictly above the Poisson-like baseline).
func TestRenewalCountUnitMean(t *testing.T) {
	const window = 8.0
	const n = 8000

	// Gamma with unit mean: scale = 1/shape.
	for _, shape := range []float64{0.4, 1.0, 3.0} {
		r := NewRNG(31)
		mean, _ := moments(n, func() float64 {
			return float64(RenewalCount(window, func() float64 { return Gamma(r, shape, 1/shape) }))
		})
		// Renewal counts undershoot the window slightly (edge effects);
		// allow a generous band around λ.
		if mean < window*0.75 || mean > window*1.15 {
			t.Errorf("Gamma renewal (k=%v): mean count %v, want ≈ %v", shape, mean, window)
		}
	}
	// Weibull with unit mean: scale = 1/Γ(1+1/k).
	for _, shape := range []float64{0.6, 1.0, 2.0} {
		r := NewRNG(37)
		scale := 1 / math.Gamma(1+1/shape)
		mean, _ := moments(n, func() float64 {
			return float64(RenewalCount(window, func() float64 { return Weibull(r, shape, scale) }))
		})
		if mean < window*0.7 || mean > window*1.15 {
			t.Errorf("Weibull renewal (k=%v): mean count %v, want ≈ %v", shape, mean, window)
		}
	}
	// Overdispersion: Gamma k=0.3 counts vary more than exponential counts.
	rHeavy, rExp := NewRNG(41), NewRNG(41)
	_, varHeavy := moments(n, func() float64 {
		return float64(RenewalCount(window, func() float64 { return Gamma(rHeavy, 0.3, 1/0.3) }))
	})
	_, varExp := moments(n, func() float64 {
		return float64(RenewalCount(window, func() float64 { return Gamma(rExp, 1, 1) }))
	})
	if varHeavy <= varExp {
		t.Errorf("heavy-tailed renewal variance %v not above exponential %v", varHeavy, varExp)
	}
	if RenewalCount(5, func() float64 { return 0 }) != 0 {
		t.Error("degenerate zero interarrivals must terminate with count 0")
	}
}

// TestSamplersDeterministic pins a few exact draws at a fixed seed so any
// change to the sampling algorithms (which would silently invalidate every
// recorded scenario) turns up as a test failure rather than a replay
// mismatch three layers up.
func TestSamplersDeterministic(t *testing.T) {
	r1, r2 := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a, b := Poisson(r1, 6.5), Poisson(r2, 6.5); a != b {
			t.Fatalf("Poisson draw %d diverged: %d vs %d", i, a, b)
		}
	}
	r1, r2 = NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a, b := Gamma(r1, 0.8, 2), Gamma(r2, 0.8, 2); a != b {
			t.Fatalf("Gamma draw %d diverged: %v vs %v", i, a, b)
		}
		if a, b := Weibull(r1, 0.8, 2), Weibull(r2, 0.8, 2); a != b {
			t.Fatalf("Weibull draw %d diverged: %v vs %v", i, a, b)
		}
	}
}

package stats

import (
	"math"
	"math/rand"
)

// This file holds the arrival-process samplers behind internal/scenario:
// Poisson counts and Gamma/Weibull interarrival draws. All of them thread
// an explicit *rand.Rand (NewRNG) so scenario event streams are a pure
// function of the spec seed.

// Poisson draws a Poisson-distributed count with mean lambda. For moderate
// rates it uses Knuth's product-of-uniforms method; large rates are split
// recursively (a Poisson(λ) is the sum of independent Poisson(λ/2) draws),
// which keeps the method exact without exp-underflow. Non-positive rates
// yield 0.
func Poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// exp(-745) is below the smallest positive float64; split well before.
	const maxDirect = 500
	n := 0
	for lambda > maxDirect {
		n += Poisson(r, lambda/2)
		lambda /= 2
	}
	limit := math.Exp(-lambda)
	prod := r.Float64()
	for prod > limit {
		n++
		prod *= r.Float64()
	}
	return n
}

// Gamma draws from the Gamma distribution with the given shape k and scale
// θ (mean kθ, variance kθ²) using the Marsaglia–Tsang squeeze method;
// shapes below 1 are boosted via Gamma(k+1)·U^(1/k). Non-positive
// parameters yield 0.
func Gamma(r *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: X ~ Gamma(k+1), then X·U^(1/k) ~ Gamma(k).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma(r, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull draws from the Weibull distribution with the given shape k and
// scale λ by inverting the CDF: λ·(−ln U)^(1/k). Mean λ·Γ(1+1/k). Shapes
// below 1 give heavy-tailed interarrivals (bursts separated by long
// silences). Non-positive parameters yield 0.
func Weibull(r *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 { // -ln 0 diverges
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// GammaMean returns the mean kθ of Gamma(shape k, scale θ).
func GammaMean(shape, scale float64) float64 { return shape * scale }

// WeibullMean returns the closed-form mean λ·Γ(1+1/k) of Weibull(shape k,
// scale λ).
func WeibullMean(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	return scale * math.Gamma(1+1/shape)
}

// RenewalCount counts renewals of the interarrival process `draw` in a
// window of the given length: the number of complete interarrival gaps
// that fit. With unit-mean draws the expected count approaches the window
// length, while the draw's dispersion shapes the count's burstiness —
// sub-exponential shapes (Gamma/Weibull k < 1) cluster arrivals. A
// non-positive draw (degenerate process) aborts the scan to stay finite.
func RenewalCount(window float64, draw func() float64) int {
	n := 0
	t := 0.0
	for {
		d := draw()
		if d <= 0 {
			return n
		}
		t += d
		if t > window {
			return n
		}
		n++
	}
}

package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates scalar observations and reports the usual aggregates.
// The zero value is ready to use.
type Summary struct {
	values []float64
	sum    float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.values) }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the minimum observation, or +Inf with no observations.
func (s *Summary) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum observation, or -Inf with no observations.
func (s *Summary) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Summary) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 with no observations.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String implements fmt.Stringer with a compact one-line report.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f min=%.4f max=%.4f sd=%.4f",
		s.N(), s.Mean(), s.Min(), s.Max(), s.Stddev())
}

// Timer measures wall-clock durations and accumulates them into a Summary
// expressed in seconds.
type Timer struct {
	Summary
}

// Time runs f and records its duration in seconds.
func (t *Timer) Time(f func()) time.Duration {
	start := time.Now()
	f()
	d := time.Since(start)
	t.Add(d.Seconds())
	return d
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTruncGaussianRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := TruncGaussian(r, 0.05, 0.10, PaperSigma)
		if v < 0.05 || v > 0.10 {
			t.Fatalf("sample %v outside [0.05, 0.10]", v)
		}
	}
}

func TestTruncGaussianCentered(t *testing.T) {
	// With sigma=0.2 and truncation to [-1,1] the mapped mean should be very
	// close to the range midpoint.
	r := NewRNG(7)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(TruncGaussian(r, 0, 1, PaperSigma))
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", s.Mean())
	}
	// Mass should concentrate near the midpoint: stddev of mapped samples is
	// sigma/2 = 0.1.
	if s.Stddev() < 0.05 || s.Stddev() > 0.15 {
		t.Errorf("stddev = %v, want ~0.1", s.Stddev())
	}
}

func TestTruncGaussianDegenerate(t *testing.T) {
	r := NewRNG(1)
	if v := TruncGaussian(r, 0.3, 0.3, PaperSigma); v != 0.3 {
		t.Errorf("degenerate range returned %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted range should panic")
		}
	}()
	TruncGaussian(r, 1, 0, PaperSigma)
}

func TestGaussianPointClamped(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		x, y := GaussianPoint(r, 0.5, 0.5, 0.2)
		if x < 0 || x > 1 || y < 0 || y > 1 {
			t.Fatalf("point (%v,%v) outside unit square", x, y)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(5)
	got := SampleWithoutReplacement(r, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	if got := SampleWithoutReplacement(r, 3, 10); len(got) != 3 {
		t.Errorf("oversample: len = %d, want 3", len(got))
	}
	if got := SampleWithoutReplacement(r, 0, 5); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(11)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), s...)
	Shuffle(r, s)
	if len(s) != len(orig) {
		t.Fatal("shuffle changed length")
	}
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Error("shuffle changed elements")
	}
}

func TestZipfSizes(t *testing.T) {
	r := NewRNG(13)
	sizes := ZipfSizes(r, 20000, 1.5, 100)
	if len(sizes) != 20000 {
		t.Fatalf("len = %d", len(sizes))
	}
	count1, countBig := 0, 0
	for _, v := range sizes {
		if v < 1 || v > 100 {
			t.Fatalf("size %d out of range", v)
		}
		if v == 1 {
			count1++
		}
		if v > 50 {
			countBig++
		}
	}
	// Heavy tail: size 1 dominates, but large sizes still occur.
	if count1 < 7000 {
		t.Errorf("size-1 count %d too small for zipf(1.5)", count1)
	}
	if countBig == 0 {
		t.Error("no large groups sampled; tail missing")
	}
	if got := ZipfSizes(r, 0, 1.5, 10); got != nil {
		t.Error("n=0 should return nil")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 {
		t.Error("zero Summary not empty")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 || s.Sum() != 10 || s.Mean() != 2.5 {
		t.Errorf("N/Sum/Mean = %d/%v/%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSummaryPercentile(t *testing.T) {
	var s Summary
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	tests := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSummaryPercentileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			cur := s.Percentile(p)
			if len(vals) > 0 && cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("percentile not monotone in p: %v", err)
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	d := tm.Time(func() {})
	if d < 0 {
		t.Error("negative duration")
	}
	if tm.N() != 1 {
		t.Errorf("Timer recorded %d samples, want 1", tm.N())
	}
}

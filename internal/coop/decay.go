package coop

import (
	"fmt"
	"math"
	"sync"
)

// DecayHistory is a recency-weighted variant of the Equation 1 estimator:
// each shared-task rating is weighted by exp(−λ·(now − t)) where t is the
// rating's timestamp, so a pair's estimate tracks how they cooperate *now*
// rather than averaging over their whole past. With λ = 0 it degenerates to
// History. This is the natural production extension of Equation 1 — worker
// cooperation drifts as people join, burn out, or learn — and the paper's
// estimator is the λ = 0 special case.
//
//	q_i(w_k) = α·ω + (1−α) · Σ_j w_j·s_j / Σ_j w_j,   w_j = exp(−λ·(now−t_j))
//
// DecayHistory is safe for concurrent use.
type DecayHistory struct {
	mu     sync.RWMutex
	n      int
	alpha  float64
	omega  float64
	lambda float64
	now    float64
	recs   map[pairKey][]decayRec
}

type decayRec struct {
	score float64
	time  float64
}

// NewDecayHistory returns an empty decayed estimator. lambda ≥ 0 is the
// decay rate per time unit.
func NewDecayHistory(n int, alpha, omega, lambda float64) *DecayHistory {
	if alpha < 0 || alpha > 1 || omega < 0 || omega > 1 {
		panic(fmt.Sprintf("coop: alpha/omega (%v,%v) outside [0,1]", alpha, omega))
	}
	if lambda < 0 {
		panic("coop: negative decay rate")
	}
	return &DecayHistory{
		n: n, alpha: alpha, omega: omega, lambda: lambda,
		recs: make(map[pairKey][]decayRec),
	}
}

// Advance moves the estimator's clock forward to now; Quality weights are
// relative to this time. Moving backwards is rejected.
func (h *DecayHistory) Advance(now float64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if now < h.now {
		return fmt.Errorf("coop: clock moved backwards (%v < %v)", now, h.now)
	}
	h.now = now
	return nil
}

// Now returns the estimator's clock.
func (h *DecayHistory) Now() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.now
}

// Record registers a rating for workers i and k at the current clock.
func (h *DecayHistory) Record(i, k int, score float64) {
	if i == k {
		panic("coop: cannot record self cooperation")
	}
	if score < 0 || score > 1 {
		panic(fmt.Sprintf("coop: rating %v outside [0,1]", score))
	}
	key := keyOf(i, k)
	h.mu.Lock()
	h.recs[key] = append(h.recs[key], decayRec{score: score, time: h.now})
	h.mu.Unlock()
}

// RecordGroup registers a rated task completed by a whole worker group.
func (h *DecayHistory) RecordGroup(workers []int, score float64) {
	for a := 0; a < len(workers); a++ {
		for b := a + 1; b < len(workers); b++ {
			h.Record(workers[a], workers[b], score)
		}
	}
}

// Quality implements Model.
func (h *DecayHistory) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	h.mu.RLock()
	recs := h.recs[keyOf(i, k)]
	now := h.now
	lambda := h.lambda
	h.mu.RUnlock()
	hist := h.omega
	if len(recs) > 0 {
		var wsum, sum float64
		for _, r := range recs {
			w := math.Exp(-lambda * (now - r.time))
			wsum += w
			sum += w * r.score
		}
		if wsum > 0 {
			hist = sum / wsum
		}
	}
	return h.alpha*h.omega + (1-h.alpha)*hist
}

// NumWorkers implements Model.
func (h *DecayHistory) NumWorkers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.n
}

// Grow raises the worker count to at least n.
func (h *DecayHistory) Grow(n int) {
	h.mu.Lock()
	if n > h.n {
		h.n = n
	}
	h.mu.Unlock()
}

// Compact drops records whose weight at the current clock is below the
// threshold (they no longer influence estimates meaningfully) and returns
// how many were removed. Platforms call this periodically to bound memory.
func (h *DecayHistory) Compact(minWeight float64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lambda == 0 || minWeight <= 0 {
		return 0
	}
	removed := 0
	for key, recs := range h.recs {
		kept := recs[:0]
		for _, r := range recs {
			if math.Exp(-h.lambda*(h.now-r.time)) >= minWeight {
				kept = append(kept, r)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(h.recs, key)
		} else {
			h.recs[key] = kept
		}
	}
	return removed
}

package coop

// Subset restricts a quality model to a subset of workers re-indexed
// densely: local index i maps to global worker IDs[i]. The batch framework
// uses it to hand each round's sampled workers to the solvers without
// copying the underlying model.
type Subset struct {
	Base Model
	IDs  []int
}

// NewSubset returns a Subset view. It panics if any ID is out of the base
// model's range.
func NewSubset(base Model, ids []int) *Subset {
	n := base.NumWorkers()
	for _, id := range ids {
		if id < 0 || id >= n {
			panic("coop: subset ID out of range")
		}
	}
	return &Subset{Base: base, IDs: ids}
}

// Quality implements Model.
func (s *Subset) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	return s.Base.Quality(s.IDs[i], s.IDs[k])
}

// NumWorkers implements Model.
func (s *Subset) NumWorkers() int { return len(s.IDs) }

package coop

import (
	"fmt"
	"sort"
	"sync"
)

// History accumulates co-operation records — task ratings shared by worker
// pairs — and estimates qualities with Equation 1 of the paper:
//
//	q_i(w_k) = α·ω + (1−α)·mean(s_j over tasks both contributed to)
//
// Pairs with no shared history fall back to the prior: q = α·ω + (1−α)·ω,
// i.e. ω (the paper's "priori assumption ... the average cooperation quality
// between any two workers, such as ω"). History is safe for concurrent use.
type History struct {
	mu    sync.RWMutex
	n     int
	alpha float64
	omega float64
	sum   map[pairKey]float64
	count map[pairKey]int
}

type pairKey struct{ lo, hi int }

func keyOf(i, k int) pairKey {
	if i > k {
		i, k = k, i
	}
	return pairKey{lo: i, hi: k}
}

// NewHistory returns an empty history over n workers with mixing parameter
// alpha ∈ [0,1] and base quality omega ∈ [0,1]. The paper's experiments use
// alpha = omega = 0.5.
func NewHistory(n int, alpha, omega float64) *History {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("coop: alpha %v outside [0,1]", alpha))
	}
	if omega < 0 || omega > 1 {
		panic(fmt.Sprintf("coop: omega %v outside [0,1]", omega))
	}
	return &History{
		n:     n,
		alpha: alpha,
		omega: omega,
		sum:   make(map[pairKey]float64),
		count: make(map[pairKey]int),
	}
}

// Record registers that workers i and k both contributed to a task rated
// score ∈ [0,1].
func (h *History) Record(i, k int, score float64) {
	if i == k {
		panic("coop: cannot record self cooperation")
	}
	if score < 0 || score > 1 {
		panic(fmt.Sprintf("coop: rating %v outside [0,1]", score))
	}
	key := keyOf(i, k)
	h.mu.Lock()
	h.sum[key] += score
	h.count[key]++
	h.mu.Unlock()
}

// RecordGroup registers a rated task completed by a whole worker group:
// every unordered pair in the group receives the rating.
func (h *History) RecordGroup(workers []int, score float64) {
	for a := 0; a < len(workers); a++ {
		for b := a + 1; b < len(workers); b++ {
			h.Record(workers[a], workers[b], score)
		}
	}
}

// SharedTasks returns |T_ik|, the number of tasks workers i and k both
// contributed to.
func (h *History) SharedTasks(i, k int) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count[keyOf(i, k)]
}

// AddFrom merges every pair record of src into h: sums and counts add,
// and the worker count grows to cover src. Merging the per-shard
// histories of a sharded platform (in shard order) therefore yields
// exactly the Equation 1 estimates one global history would hold —
// ratings are recorded in whichever shard owned the task, and each
// pair's total is the order-fixed sum of its per-shard partial sums.
func (h *History) AddFrom(src *History) {
	src.mu.RLock()
	defer src.mu.RUnlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	//casclint:ignore maporder each destination key is accumulated exactly once per source map, so float order across distinct keys cannot affect any key's value
	for key, s := range src.sum {
		h.sum[key] += s
	}
	for key, c := range src.count {
		h.count[key] += c
	}
	if src.n > h.n {
		h.n = src.n
	}
}

// PairStats returns the accumulated rating sum and count for the pair
// (i, k). Sums and counts from independent histories add, so callers
// holding several histories (one per spatial shard) can aggregate pair
// statistics into exactly the Equation 1 estimate one global history would
// produce.
func (h *History) PairStats(i, k int) (sum float64, count int) {
	key := keyOf(i, k)
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.sum[key], h.count[key]
}

// Quality implements Model with Equation 1.
func (h *History) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	key := keyOf(i, k)
	h.mu.RLock()
	c := h.count[key]
	s := h.sum[key]
	h.mu.RUnlock()
	hist := h.omega // prior when no shared history
	if c > 0 {
		hist = s / float64(c)
	}
	return h.alpha*h.omega + (1-h.alpha)*hist
}

// NumWorkers implements Model.
func (h *History) NumWorkers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.n
}

// Grow raises the worker count to at least n. Existing records are kept;
// new workers start from the prior. Platforms registering workers
// dynamically call this as IDs are handed out.
func (h *History) Grow(n int) {
	h.mu.Lock()
	if n > h.n {
		h.n = n
	}
	h.mu.Unlock()
}

// PairRecord is one worker pair's accumulated rating history, used for
// snapshotting a History to disk and restoring it.
type PairRecord struct {
	I     int     `json:"i"`
	K     int     `json:"k"`
	Sum   float64 `json:"sum"`
	Count int     `json:"count"`
}

// Export snapshots all accumulated records, sorted by (I, K).
func (h *History) Export() []PairRecord {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]PairRecord, 0, len(h.count))
	for key, c := range h.count {
		out = append(out, PairRecord{I: key.lo, K: key.hi, Sum: h.sum[key], Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].K < out[b].K
	})
	return out
}

// Import merges exported records into the history (sums and counts add).
// Records referencing workers beyond the current count grow it.
func (h *History) Import(recs []PairRecord) error {
	for _, r := range recs {
		if r.I == r.K || r.I < 0 || r.K < 0 {
			return fmt.Errorf("coop: bad pair record (%d,%d)", r.I, r.K)
		}
		if r.Count < 0 || r.Sum < 0 || r.Sum > float64(r.Count) {
			return fmt.Errorf("coop: pair (%d,%d) has sum %v over %d ratings", r.I, r.K, r.Sum, r.Count)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range recs {
		key := keyOf(r.I, r.K)
		h.sum[key] += r.Sum
		h.count[key] += r.Count
		if r.K+1 > h.n {
			h.n = r.K + 1
		}
		if r.I+1 > h.n {
			h.n = r.I + 1
		}
	}
	return nil
}

// Jaccard is the Meetup-experiment quality model of §VI-A:
//
//	q_i(w_k) = 0.5·0.5 + 0.5 · c_ik / C_ik
//
// where c_ik is the number of groups both workers joined and C_ik the size
// of the union of their group sets. Group memberships are stored as sorted
// int slices per worker, so Quality runs a linear merge with no allocation.
type Jaccard struct {
	// Groups[i] is the sorted slice of group IDs worker i belongs to.
	Groups [][]int
	// Alpha and Omega parameterize the blend; the paper fixes both to 0.5
	// (with s_j = 1 in Equation 1).
	Alpha, Omega float64
}

// NewJaccard builds a Jaccard model with the paper's α = ω = 0.5 from
// per-worker group membership lists. The lists must be sorted ascending and
// duplicate-free; NewJaccard verifies this and panics otherwise.
func NewJaccard(groups [][]int) *Jaccard {
	for w, g := range groups {
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				panic(fmt.Sprintf("coop: worker %d group list not sorted/unique", w))
			}
		}
	}
	return &Jaccard{Groups: groups, Alpha: 0.5, Omega: 0.5}
}

// Quality implements Model.
func (j *Jaccard) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	gi, gk := j.Groups[i], j.Groups[k]
	inter, union := 0, 0
	a, b := 0, 0
	for a < len(gi) && b < len(gk) {
		switch {
		case gi[a] == gk[b]:
			inter++
			union++
			a++
			b++
		case gi[a] < gk[b]:
			union++
			a++
		default:
			union++
			b++
		}
	}
	union += (len(gi) - a) + (len(gk) - b)
	frac := 0.0
	if union > 0 {
		frac = float64(inter) / float64(union)
	}
	return j.Alpha*j.Omega + (1-j.Alpha)*frac
}

// NumWorkers implements Model.
func (j *Jaccard) NumWorkers() int { return len(j.Groups) }

package coop

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 0.8)
	m.Set(1, 2, 0.3)
	if got := m.Quality(0, 1); got != 0.8 {
		t.Errorf("Quality(0,1) = %v", got)
	}
	if got := m.Quality(1, 0); got != 0.8 {
		t.Errorf("asymmetric: Quality(1,0) = %v", got)
	}
	if got := m.Quality(0, 2); got != 0 {
		t.Errorf("unset pair = %v, want 0", got)
	}
	if got := m.Quality(1, 1); got != 0 {
		t.Errorf("diagonal = %v, want 0", got)
	}
	if m.NumWorkers() != 3 {
		t.Errorf("NumWorkers = %d", m.NumWorkers())
	}
}

func TestMatrixPanics(t *testing.T) {
	m := NewMatrix(2)
	for name, f := range map[string]func(){
		"self":     func() { m.Set(1, 1, 0.5) },
		"negative": func() { m.Set(0, 1, -0.1) },
		"above 1":  func() { m.Set(0, 1, 1.1) },
		"nan":      func() { m.Set(0, 1, math.NaN()) },
		"neg size": func() { NewMatrix(-1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestFunc(t *testing.T) {
	f := Func{N: 5, F: func(i, k int) float64 { return 0.5 }}
	if f.Quality(2, 2) != 0 {
		t.Error("diagonal not zeroed")
	}
	if f.Quality(1, 2) != 0.5 {
		t.Error("function not forwarded")
	}
	if f.NumWorkers() != 5 {
		t.Error("NumWorkers wrong")
	}
}

func TestSyntheticProperties(t *testing.T) {
	s := Synthetic{N: 100, Seed: 7}
	symmetricBounded := func(i, k uint8) bool {
		a, b := int(i)%100, int(k)%100
		q := s.Quality(a, b)
		if a == b {
			return q == 0
		}
		return q >= 0 && q <= 1 && q == s.Quality(b, a)
	}
	if err := quick.Check(symmetricBounded, nil); err != nil {
		t.Error(err)
	}
	// Deterministic per seed, distinct across seeds.
	s2 := Synthetic{N: 100, Seed: 7}
	s3 := Synthetic{N: 100, Seed: 8}
	if s.Quality(3, 9) != s2.Quality(3, 9) {
		t.Error("same seed differs")
	}
	diff := false
	for i := 0; i < 20 && !diff; i++ {
		if s.Quality(i, i+1) != s3.Quality(i, i+1) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical qualities")
	}
}

func TestSyntheticRoughlyUniform(t *testing.T) {
	s := Synthetic{N: 1000, Seed: 1}
	var sum float64
	n := 0
	for i := 0; i < 200; i++ {
		for k := i + 1; k < 200; k++ {
			sum += s.Quality(i, k)
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("mean quality %v, want ~0.5 for uniform hash", mean)
	}
}

func TestHistoryEquation1(t *testing.T) {
	h := NewHistory(4, 0.5, 0.5)
	// No shared history: prior only => alpha*omega + (1-alpha)*omega = omega.
	if got := h.Quality(0, 1); got != 0.5 {
		t.Errorf("prior quality = %v, want 0.5", got)
	}
	// Record two tasks with ratings 1.0 and 0.6: mean 0.8.
	h.Record(0, 1, 1.0)
	h.Record(1, 0, 0.6) // order must not matter
	want := 0.5*0.5 + 0.5*0.8
	if got := h.Quality(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quality = %v, want %v (Equation 1)", got, want)
	}
	if got := h.Quality(1, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("asymmetric result: %v", got)
	}
	if h.SharedTasks(0, 1) != 2 {
		t.Errorf("SharedTasks = %d, want 2", h.SharedTasks(0, 1))
	}
	if h.SharedTasks(2, 3) != 0 {
		t.Errorf("SharedTasks of fresh pair = %d", h.SharedTasks(2, 3))
	}
}

func TestHistoryAlphaExtremes(t *testing.T) {
	// alpha = 1: pure prior regardless of history.
	h := NewHistory(2, 1, 0.3)
	h.Record(0, 1, 1.0)
	if got := h.Quality(0, 1); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("alpha=1 quality = %v, want 0.3", got)
	}
	// alpha = 0: pure history.
	h0 := NewHistory(2, 0, 0.3)
	h0.Record(0, 1, 0.9)
	if got := h0.Quality(0, 1); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("alpha=0 quality = %v, want 0.9", got)
	}
}

func TestHistoryRecordGroup(t *testing.T) {
	h := NewHistory(4, 0.5, 0.5)
	h.RecordGroup([]int{0, 1, 2}, 0.9)
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if h.SharedTasks(pair[0], pair[1]) != 1 {
			t.Errorf("pair %v missing group record", pair)
		}
	}
	if h.SharedTasks(0, 3) != 0 {
		t.Error("non-member got a record")
	}
}

func TestHistoryBoundsProperty(t *testing.T) {
	f := func(ratings []float64) bool {
		h := NewHistory(2, 0.5, 0.5)
		for _, r := range ratings {
			r = math.Abs(math.Mod(r, 1))
			h.Record(0, 1, r)
		}
		q := h.Quality(0, 1)
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistoryConcurrent(t *testing.T) {
	h := NewHistory(10, 0.5, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Record(g, 9, 0.5)
				_ = h.Quality(g, 9)
			}
		}(g)
	}
	wg.Wait()
	if h.SharedTasks(0, 9) != 200 {
		t.Errorf("SharedTasks = %d, want 200", h.SharedTasks(0, 9))
	}
}

func TestHistoryPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad alpha": func() { NewHistory(2, -0.1, 0.5) },
		"bad omega": func() { NewHistory(2, 0.5, 1.5) },
		"self":      func() { NewHistory(2, 0.5, 0.5).Record(1, 1, 0.5) },
		"bad score": func() { NewHistory(2, 0.5, 0.5).Record(0, 1, 2) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestJaccardPaperFormula(t *testing.T) {
	// Workers: 0 in groups {1,2,3}, 1 in groups {2,3,4}, 2 in no groups.
	j := NewJaccard([][]int{{1, 2, 3}, {2, 3, 4}, {}})
	// c=2 (groups 2,3), C=4 (groups 1..4): q = 0.25 + 0.5*2/4 = 0.5.
	if got := j.Quality(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Quality(0,1) = %v, want 0.5", got)
	}
	// No groups at all: q = 0.25 + 0 = 0.25 (the base term only).
	if got := j.Quality(0, 2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Quality(0,2) = %v, want 0.25", got)
	}
	if j.Quality(1, 1) != 0 {
		t.Error("diagonal not zero")
	}
	if j.NumWorkers() != 3 {
		t.Error("NumWorkers wrong")
	}
}

func TestJaccardIdenticalGroups(t *testing.T) {
	j := NewJaccard([][]int{{5, 9}, {5, 9}})
	// Full overlap: q = 0.25 + 0.5*1 = 0.75, the maximum under this model.
	if got := j.Quality(0, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Quality = %v, want 0.75", got)
	}
}

func TestJaccardSymmetricProperty(t *testing.T) {
	groups := [][]int{{1, 3, 5}, {2, 3}, {1, 2, 3, 4, 5, 6}, {}, {7}}
	j := NewJaccard(groups)
	for i := range groups {
		for k := range groups {
			a, b := j.Quality(i, k), j.Quality(k, i)
			if a != b {
				t.Fatalf("asymmetric at (%d,%d): %v vs %v", i, k, a, b)
			}
			if a < 0 || a > 1 {
				t.Fatalf("out of range at (%d,%d): %v", i, k, a)
			}
		}
	}
}

func TestJaccardValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted group list should panic")
		}
	}()
	NewJaccard([][]int{{3, 1}})
}

func TestHistoryExportImportRoundTrip(t *testing.T) {
	h := NewHistory(5, 0.5, 0.5)
	h.Record(0, 1, 1.0)
	h.Record(0, 1, 0.6)
	h.Record(3, 4, 0.2)
	recs := h.Export()
	if len(recs) != 2 {
		t.Fatalf("exported %d records, want 2", len(recs))
	}
	if recs[0].I != 0 || recs[0].K != 1 || recs[0].Count != 2 || math.Abs(recs[0].Sum-1.6) > 1e-12 {
		t.Fatalf("record 0: %+v", recs[0])
	}
	fresh := NewHistory(0, 0.5, 0.5)
	if err := fresh.Import(recs); err != nil {
		t.Fatal(err)
	}
	if fresh.NumWorkers() != 5 {
		t.Errorf("import grew to %d workers, want 5", fresh.NumWorkers())
	}
	for _, pair := range [][2]int{{0, 1}, {3, 4}, {1, 2}} {
		if a, b := h.Quality(pair[0], pair[1]), fresh.Quality(pair[0], pair[1]); math.Abs(a-b) > 1e-12 {
			t.Errorf("pair %v: %v vs %v", pair, a, b)
		}
	}
}

func TestHistoryImportRejectsGarbage(t *testing.T) {
	h := NewHistory(2, 0.5, 0.5)
	cases := map[string]PairRecord{
		"self pair": {I: 1, K: 1, Count: 1, Sum: 0.5},
		"negative":  {I: -1, K: 0, Count: 1, Sum: 0.5},
		"sum>count": {I: 0, K: 1, Count: 1, Sum: 1.5},
		"neg count": {I: 0, K: 1, Count: -1, Sum: 0},
	}
	for name, rec := range cases {
		if err := h.Import([]PairRecord{rec}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

package coop

// Cached memoizes a quality model. Models like Jaccard recompute a list
// merge on every call, and the solvers evaluate the same pairs many times
// (TPG's best-B-subset search, GT's best responses), so a per-instance memo
// pays for itself quickly: one batch at Table II defaults touches ~10^5
// distinct pairs but makes ~10^7 quality calls. Cached is NOT safe for
// concurrent use; solvers are single-goroutine per instance.
type Cached struct {
	Base Model
	memo map[uint64]float64
}

// NewCached wraps base with an unbounded memo table.
func NewCached(base Model) *Cached {
	return &Cached{Base: base, memo: make(map[uint64]float64)}
}

// Quality implements Model. It assumes the base model is symmetric (all
// models in this repository are) and memoizes per unordered pair. The key
// packs the pair into one uint64; worker indices therefore must fit in 32
// bits, which they comfortably do (they index in-memory slices).
func (c *Cached) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	if i > k {
		i, k = k, i
	}
	key := uint64(uint32(i))<<32 | uint64(uint32(k))
	if v, ok := c.memo[key]; ok {
		return v
	}
	v := c.Base.Quality(i, k)
	c.memo[key] = v
	return v
}

// NumWorkers implements Model.
func (c *Cached) NumWorkers() int { return c.Base.NumWorkers() }

// Len reports the number of memoized pairs (for tests and metrics).
func (c *Cached) Len() int { return len(c.memo) }

// Unwrap returns the underlying model (errors.Unwrap convention).
func (c *Cached) Unwrap() Model { return c.Base }

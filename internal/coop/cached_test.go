package coop

import (
	"testing"
)

// countingModel counts base evaluations.
type countingModel struct {
	base  Model
	calls int
}

func (c *countingModel) Quality(i, k int) float64 {
	c.calls++
	return c.base.Quality(i, k)
}
func (c *countingModel) NumWorkers() int { return c.base.NumWorkers() }

func TestCachedTransparent(t *testing.T) {
	base := Synthetic{N: 50, Seed: 3}
	c := NewCached(base)
	for i := 0; i < 50; i++ {
		for k := 0; k < 50; k++ {
			if got, want := c.Quality(i, k), base.Quality(i, k); got != want {
				t.Fatalf("Quality(%d,%d) = %v, want %v", i, k, got, want)
			}
		}
	}
	if c.NumWorkers() != 50 {
		t.Error("NumWorkers not forwarded")
	}
	if c.Unwrap() != Model(base) {
		t.Error("Unwrap lost base")
	}
}

func TestCachedMemoizes(t *testing.T) {
	counter := &countingModel{base: Synthetic{N: 10, Seed: 1}}
	c := NewCached(counter)
	for rep := 0; rep < 100; rep++ {
		c.Quality(3, 7)
		c.Quality(7, 3) // same unordered pair
	}
	if counter.calls != 1 {
		t.Errorf("base evaluated %d times, want 1", counter.calls)
	}
	if c.Len() != 1 {
		t.Errorf("memo holds %d pairs, want 1", c.Len())
	}
	c.Quality(1, 2)
	if c.Len() != 2 {
		t.Errorf("memo holds %d pairs, want 2", c.Len())
	}
	// Diagonal never touches the base.
	before := counter.calls
	if c.Quality(4, 4) != 0 {
		t.Error("diagonal nonzero")
	}
	if counter.calls != before {
		t.Error("diagonal evaluated the base")
	}
}

package coop

import (
	"math"
	"testing"
)

func TestDecayZeroLambdaMatchesHistory(t *testing.T) {
	plain := NewHistory(4, 0.5, 0.5)
	dec := NewDecayHistory(4, 0.5, 0.5, 0)
	ratings := []struct {
		i, k int
		s    float64
	}{{0, 1, 1.0}, {0, 1, 0.4}, {2, 3, 0.8}}
	for ti, r := range ratings {
		plain.Record(r.i, r.k, r.s)
		if err := dec.Advance(float64(ti)); err != nil {
			t.Fatal(err)
		}
		dec.Record(r.i, r.k, r.s)
	}
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {1, 2}} {
		p := plain.Quality(pair[0], pair[1])
		d := dec.Quality(pair[0], pair[1])
		if math.Abs(p-d) > 1e-12 {
			t.Errorf("pair %v: plain %v, decay(λ=0) %v", pair, p, d)
		}
	}
}

func TestDecayFavoursRecentRatings(t *testing.T) {
	h := NewDecayHistory(2, 0, 0.5, 1.0) // alpha=0: pure history
	h.Record(0, 1, 0.2)                  // old, bad
	if err := h.Advance(5); err != nil {
		t.Fatal(err)
	}
	h.Record(0, 1, 1.0) // fresh, great
	q := h.Quality(0, 1)
	// Weights: old exp(-5)≈0.0067, new 1.0 → estimate ≈ 0.995.
	if q < 0.95 {
		t.Errorf("quality %v should be dominated by the recent rating", q)
	}
	// An undecayed History would answer the flat mean 0.6.
	plain := NewHistory(2, 0, 0.5)
	plain.Record(0, 1, 0.2)
	plain.Record(0, 1, 1.0)
	if math.Abs(plain.Quality(0, 1)-0.6) > 1e-12 {
		t.Fatalf("plain history mean wrong: %v", plain.Quality(0, 1))
	}
}

func TestDecayPrior(t *testing.T) {
	h := NewDecayHistory(3, 0.5, 0.4, 0.5)
	// No records: q = α·ω + (1−α)·ω = ω.
	if got := h.Quality(0, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("prior = %v, want 0.4", got)
	}
	if h.Quality(1, 1) != 0 {
		t.Error("diagonal nonzero")
	}
}

func TestDecayClockMonotone(t *testing.T) {
	h := NewDecayHistory(2, 0.5, 0.5, 1)
	if err := h.Advance(3); err != nil {
		t.Fatal(err)
	}
	if h.Now() != 3 {
		t.Errorf("Now = %v", h.Now())
	}
	if err := h.Advance(2); err == nil {
		t.Error("backwards clock accepted")
	}
}

func TestDecayCompact(t *testing.T) {
	h := NewDecayHistory(2, 0, 0.5, 1.0)
	h.Record(0, 1, 0.2)
	if err := h.Advance(50); err != nil {
		t.Fatal(err)
	}
	h.Record(0, 1, 0.9)
	if removed := h.Compact(1e-6); removed != 1 {
		t.Fatalf("Compact removed %d records, want 1 (the 50-units-old one)", removed)
	}
	// The estimate must be unchanged to numerical precision: the removed
	// record's weight was exp(-50).
	if q := h.Quality(0, 1); math.Abs(q-0.9) > 1e-6 {
		t.Errorf("quality after compaction = %v, want ~0.9", q)
	}
	// λ=0 compaction is a no-op.
	h0 := NewDecayHistory(2, 0, 0.5, 0)
	h0.Record(0, 1, 0.3)
	if h0.Compact(0.5) != 0 {
		t.Error("λ=0 compaction removed records")
	}
}

func TestDecayGrowAndGroup(t *testing.T) {
	h := NewDecayHistory(0, 0.5, 0.5, 0.1)
	h.Grow(5)
	if h.NumWorkers() != 5 {
		t.Errorf("NumWorkers = %d", h.NumWorkers())
	}
	h.RecordGroup([]int{0, 1, 2}, 0.9)
	if h.Quality(0, 2) <= 0.5 {
		t.Error("group rating not recorded")
	}
}

func TestDecayPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad alpha":  func() { NewDecayHistory(2, 2, 0.5, 0) },
		"bad lambda": func() { NewDecayHistory(2, 0.5, 0.5, -1) },
		"self":       func() { NewDecayHistory(2, 0.5, 0.5, 0).Record(0, 0, 0.5) },
		"bad score":  func() { NewDecayHistory(2, 0.5, 0.5, 0).Record(0, 1, 7) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

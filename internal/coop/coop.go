// Package coop models the pairwise cooperation quality between workers.
//
// The paper assumes the platform knows a cooperation quality score
// q_i(w_k) ∈ [0,1] for every worker pair, estimated from historical
// co-operation records with Equation 1:
//
//	q_i(w_k) = α·ω + (1−α)·( Σ_{t_j ∈ T_ik} s_j / |T_ik| )
//
// where ω is a base quality configured by the platform, s_j is the rating of
// a task both workers contributed to, and α reconciles the prior with the
// history. This package provides that estimator plus the two quality models
// the experiments use: the co-group Jaccard model for the Meetup dataset
// (§VI-A: q_i(w_k) = 0.5·0.5 + 0.5·c_ik/C_ik) and a deterministic synthetic
// model for generated workloads.
package coop

import (
	"fmt"
	"math"
)

// Model yields the cooperation quality q_i(w_k) between two workers
// addressed by dense indices. Implementations must be symmetric unless
// documented otherwise and must return values in [0,1]. Quality(i,i) is
// never meaningful; implementations should return 0 for it.
type Model interface {
	// Quality returns q_i(w_k) for workers i and k.
	Quality(i, k int) float64
	// NumWorkers returns the number of workers the model covers.
	NumWorkers() int
}

// Matrix is a dense symmetric quality matrix. Suitable for small instances
// and tests; at m workers it stores m^2 float64s.
type Matrix struct {
	n int
	q []float64
}

// NewMatrix returns an all-zero n x n matrix.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("coop: negative worker count")
	}
	return &Matrix{n: n, q: make([]float64, n*n)}
}

// Set assigns q_i(w_k) = q_k(w_i) = v. It panics outside [0,1] or on i == k.
func (m *Matrix) Set(i, k int, v float64) {
	if i == k {
		panic("coop: self quality is undefined")
	}
	if v < 0 || v > 1 || math.IsNaN(v) {
		panic(fmt.Sprintf("coop: quality %v outside [0,1]", v))
	}
	m.q[i*m.n+k] = v
	m.q[k*m.n+i] = v
}

// Quality implements Model.
func (m *Matrix) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	return m.q[i*m.n+k]
}

// NumWorkers implements Model.
func (m *Matrix) NumWorkers() int { return m.n }

// Func adapts a plain function to Model. The function must already be
// symmetric and bounded; Func zeroes the diagonal.
type Func struct {
	N int
	F func(i, k int) float64
}

// Quality implements Model.
func (f Func) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	return f.F(i, k)
}

// NumWorkers implements Model.
func (f Func) NumWorkers() int { return f.N }

// Synthetic is a deterministic pseudo-random symmetric quality model: the
// quality of a pair is a hash of the unordered pair mixed with a seed,
// mapped into [0,1]. It needs O(1) memory regardless of worker count, which
// is what makes the m = 5,000 scalability experiment (Fig. 7) feasible
// without a 200 MB matrix.
type Synthetic struct {
	N    int
	Seed uint64
}

// Quality implements Model.
func (s Synthetic) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	if i > k {
		i, k = k, i
	}
	h := splitmix64(uint64(i)<<32 ^ uint64(k) ^ s.Seed*0x9E3779B97F4A7C15)
	return float64(h>>11) / float64(1<<53)
}

// NumWorkers implements Model.
func (s Synthetic) NumWorkers() int { return s.N }

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

package coop

import "testing"

func TestSubset(t *testing.T) {
	m := NewMatrix(5)
	m.Set(1, 3, 0.7)
	m.Set(3, 4, 0.2)
	s := NewSubset(m, []int{3, 1, 4})
	if s.NumWorkers() != 3 {
		t.Fatalf("NumWorkers = %d", s.NumWorkers())
	}
	if got := s.Quality(0, 1); got != 0.7 { // global (3,1)
		t.Errorf("Quality(0,1) = %v, want 0.7", got)
	}
	if got := s.Quality(0, 2); got != 0.2 { // global (3,4)
		t.Errorf("Quality(0,2) = %v, want 0.2", got)
	}
	if got := s.Quality(1, 2); got != 0 { // global (1,4): unset
		t.Errorf("Quality(1,2) = %v, want 0", got)
	}
	if got := s.Quality(2, 2); got != 0 {
		t.Errorf("diagonal = %v", got)
	}
}

func TestSubsetPanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSubset(NewMatrix(2), []int{0, 5})
}

package meetup

import (
	"context"
	"math"
	"testing"

	"casc/internal/assign"
	"casc/internal/stats"
)

func smallConfig() Config {
	return Config{
		NumUsers:        400,
		NumGroups:       80,
		NumEvents:       150,
		Neighbourhoods:  4,
		MeanMemberships: 4,
		Seed:            7,
	}
}

func TestGenerateShape(t *testing.T) {
	c := Generate(smallConfig())
	if len(c.UserLocs) != 400 || len(c.EventLocs) != 150 || len(c.UserGroups) != 400 {
		t.Fatalf("shapes: %d users, %d events, %d membership lists",
			len(c.UserLocs), len(c.EventLocs), len(c.UserGroups))
	}
	for u, groups := range c.UserGroups {
		for i := 1; i < len(groups); i++ {
			if groups[i] <= groups[i-1] {
				t.Fatalf("user %d group list not sorted/unique: %v", u, groups)
			}
		}
		for _, g := range groups {
			if g < 0 || g >= 80 {
				t.Fatalf("user %d in nonexistent group %d", u, g)
			}
		}
	}
	for _, loc := range c.UserLocs {
		if loc.X < 0 || loc.X > 1 || loc.Y < 0 || loc.Y > 1 {
			t.Fatalf("user location %v outside unit square", loc)
		}
	}
	for _, loc := range c.EventLocs {
		if loc.X < 0 || loc.X > 1 || loc.Y < 0 || loc.Y > 1 {
			t.Fatalf("event location %v outside unit square", loc)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	for u := range a.UserLocs {
		if a.UserLocs[u] != b.UserLocs[u] {
			t.Fatal("same seed produced different cities")
		}
	}
	cfg := smallConfig()
	cfg.Seed = 8
	c := Generate(cfg)
	same := true
	for u := range a.UserLocs {
		if a.UserLocs[u] != c.UserLocs[u] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical cities")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(Config{NumUsers: 0, NumGroups: 1, NumEvents: 1})
}

func TestMembershipIsHeavyTailedAndNonEmpty(t *testing.T) {
	c := Generate(smallConfig())
	withGroups := 0
	maxGroups := 0
	for _, g := range c.UserGroups {
		if len(g) > 0 {
			withGroups++
		}
		if len(g) > maxGroups {
			maxGroups = len(g)
		}
	}
	if withGroups < 200 {
		t.Errorf("only %d/400 users joined any group", withGroups)
	}
	if maxGroups < 3 {
		t.Errorf("max memberships %d; expected some power users", maxGroups)
	}
}

func TestQualityModelProperties(t *testing.T) {
	c := Generate(smallConfig())
	q := c.Quality()
	if q.NumWorkers() != 400 {
		t.Fatalf("quality covers %d workers", q.NumWorkers())
	}
	// All qualities must lie in [0.25, 0.75]: the paper's blend with
	// alpha=omega=0.5 bounds the Jaccard term by [0, 0.5].
	var hi float64
	for i := 0; i < 100; i++ {
		for k := i + 1; k < 100; k++ {
			v := q.Quality(i, k)
			if v < 0.25-1e-12 || v > 0.75+1e-12 {
				t.Fatalf("quality(%d,%d) = %v outside [0.25,0.75]", i, k, v)
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= 0.25+1e-12 {
		t.Error("no pair shares any group; homophily generator broken")
	}
}

func TestSampleProducesSolvableInstances(t *testing.T) {
	c := Generate(smallConfig())
	r := stats.NewRNG(1)
	p := DefaultSample()
	p.NumWorkers, p.NumTasks = 200, 80
	in, err := c.Sample(r, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumValidPairs() == 0 {
		t.Fatal("sampled instance has no valid pairs")
	}
	a, err := assign.NewGT(assign.GTOptions{}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(in); err != nil {
		t.Fatal(err)
	}
	if a.TotalScore(in) <= 0 {
		t.Error("GT scored zero on a meetup sample; connectivity too low")
	}
	if ub := assign.Upper(in); a.TotalScore(in) > ub+1e-9 {
		t.Errorf("score %v above UPPER %v", a.TotalScore(in), ub)
	}
}

func TestSampleErrors(t *testing.T) {
	c := Generate(smallConfig())
	r := stats.NewRNG(2)
	p := DefaultSample()
	p.NumWorkers = 100000
	if _, err := c.Sample(r, p, 0); err == nil {
		t.Error("oversampling workers accepted")
	}
	p = DefaultSample()
	p.NumTasks = 100000
	if _, err := c.Sample(r, p, 0); err == nil {
		t.Error("oversampling tasks accepted")
	}
	p = DefaultSample()
	p.NumWorkers, p.NumTasks = 50, 20
	p.B = 1
	if _, err := c.Sample(r, p, 0); err == nil {
		t.Error("B=1 accepted")
	}
}

func TestDefaultsMirrorPaperSlice(t *testing.T) {
	cfg := Default()
	if cfg.NumUsers != 3525 || cfg.NumEvents != 1282 {
		t.Errorf("default city %d users / %d events, want the paper's 3525/1282",
			cfg.NumUsers, cfg.NumEvents)
	}
	sp := DefaultSample()
	if sp.NumWorkers != 1000 || sp.NumTasks != 500 || sp.Capacity != 5 || sp.B != 3 {
		t.Errorf("default sample params %+v do not match Table II", sp)
	}
	if math.Abs(sp.RemainingTime-3) > 1e-12 {
		t.Errorf("default τ = %v", sp.RemainingTime)
	}
}

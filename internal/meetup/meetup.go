// Package meetup synthesizes an event-based social network standing in for
// the crawled Meetup dataset the paper's "real data" experiments use
// (§VI-A). The original data — users, groups and events from meetup.com,
// restricted to Hong Kong (1,282 tasks and 3,525 workers) — is not
// available, so this package generates a city with the same three
// properties the experiments consume (see DESIGN.md §3):
//
//  1. user and event locations clustered into neighbourhoods of one city,
//     linearly mapped to [0,1]^2;
//  2. heavy-tailed group memberships with geographic homophily (users join
//     groups anchored near them), which yields the heavy-tailed co-group
//     Jaccard distribution the quality model q_i(w_k) = 0.25 + 0.5·c_ik/C_ik
//     feeds on;
//  3. uniform sampling of m workers and n tasks per experiment round.
package meetup

import (
	"fmt"
	"math/rand"
	"sort"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/stats"
)

// Config sizes the synthetic city. The defaults (Default) mirror the
// paper's Hong Kong slice.
type Config struct {
	NumUsers       int
	NumGroups      int
	NumEvents      int
	Neighbourhoods int // Gaussian location clusters
	// MeanMemberships is the average number of groups a user joins.
	MeanMemberships float64
	Seed            int64
}

// Default mirrors the paper's Hong Kong extraction: 3,525 workers and 1,282
// tasks; group count is scaled to keep membership density realistic.
func Default() Config {
	return Config{
		NumUsers:        3525,
		NumGroups:       800,
		NumEvents:       1282,
		Neighbourhoods:  8,
		MeanMemberships: 4,
		Seed:            42,
	}
}

// City is a generated event-based social network.
type City struct {
	UserLocs  []geo.Point
	EventLocs []geo.Point
	// UserGroups[u] is the sorted list of group IDs user u joined.
	UserGroups [][]int
	// GroupCentroids anchor groups geographically.
	GroupCentroids []geo.Point
}

// Generate builds a city. It panics on non-positive sizes.
func Generate(cfg Config) *City {
	if cfg.NumUsers <= 0 || cfg.NumGroups <= 0 || cfg.NumEvents <= 0 {
		panic(fmt.Sprintf("meetup: bad config %+v", cfg))
	}
	if cfg.Neighbourhoods <= 0 {
		cfg.Neighbourhoods = 1
	}
	if cfg.MeanMemberships <= 0 {
		cfg.MeanMemberships = 4
	}
	r := stats.NewRNG(cfg.Seed)
	c := &City{
		UserLocs:       make([]geo.Point, cfg.NumUsers),
		EventLocs:      make([]geo.Point, cfg.NumEvents),
		UserGroups:     make([][]int, cfg.NumUsers),
		GroupCentroids: make([]geo.Point, cfg.NumGroups),
	}

	// Neighbourhood centers spread over the city.
	centers := make([]geo.Point, cfg.Neighbourhoods)
	for i := range centers {
		centers[i] = geo.Pt(0.15+0.7*r.Float64(), 0.15+0.7*r.Float64())
	}
	drawNear := func(center geo.Point, sigma float64) geo.Point {
		x, y := stats.GaussianPoint(r, center.X, center.Y, sigma)
		return geo.Pt(x, y)
	}

	for u := range c.UserLocs {
		c.UserLocs[u] = drawNear(centers[r.Intn(len(centers))], 0.08)
	}
	for g := range c.GroupCentroids {
		c.GroupCentroids[g] = drawNear(centers[r.Intn(len(centers))], 0.05)
	}
	// Events happen where groups gather.
	for e := range c.EventLocs {
		c.EventLocs[e] = drawNear(c.GroupCentroids[r.Intn(cfg.NumGroups)], 0.04)
	}

	// Group sizes: heavy-tailed. Total membership slots ≈ users × mean.
	slots := int(float64(cfg.NumUsers) * cfg.MeanMemberships)
	sizes := stats.ZipfSizes(r, cfg.NumGroups, 1.2, cfg.NumUsers/4+2)
	total := 0
	for _, s := range sizes {
		total += s
	}
	// Rescale sizes toward the slot budget.
	for g := range sizes {
		sizes[g] = sizes[g] * slots / total
		if sizes[g] < 1 {
			sizes[g] = 1
		}
	}

	// Membership with geographic homophily: a group samples candidate users
	// and keeps the nearest to its centroid.
	memberSets := make([]map[int]bool, cfg.NumUsers)
	for u := range memberSets {
		memberSets[u] = make(map[int]bool)
	}
	for g, size := range sizes {
		if size > cfg.NumUsers {
			size = cfg.NumUsers
		}
		pool := size * 4
		if pool > cfg.NumUsers {
			pool = cfg.NumUsers
		}
		cand := stats.SampleWithoutReplacement(r, cfg.NumUsers, pool)
		sort.Slice(cand, func(i, j int) bool {
			return c.UserLocs[cand[i]].Dist2(c.GroupCentroids[g]) <
				c.UserLocs[cand[j]].Dist2(c.GroupCentroids[g])
		})
		for _, u := range cand[:size] {
			memberSets[u][g] = true
		}
	}
	for u, set := range memberSets {
		groups := make([]int, 0, len(set))
		for g := range set {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		c.UserGroups[u] = groups
	}
	return c
}

// Quality returns the paper's Meetup cooperation model over the whole city:
// q_i(w_k) = 0.5·0.5 + 0.5·c_ik/C_ik (Equation 1 with α = ω = 0.5, s_j = 1).
func (c *City) Quality() *coop.Jaccard {
	return coop.NewJaccard(c.UserGroups)
}

// SampleParams configure one experiment round drawn from the city.
type SampleParams struct {
	NumWorkers    int
	NumTasks      int
	Capacity      int
	B             int
	SpeedRange    [2]float64
	RadiusRange   [2]float64
	RemainingTime float64
}

// DefaultSample mirrors Table II's bold defaults.
func DefaultSample() SampleParams {
	return SampleParams{
		NumWorkers:    1000,
		NumTasks:      500,
		Capacity:      5,
		B:             3,
		SpeedRange:    [2]float64{0.01, 0.05},
		RadiusRange:   [2]float64{0.05, 0.10},
		RemainingTime: 3,
	}
}

// Sample draws a batch instance: m uniformly sampled users become workers
// at their user locations, n uniformly sampled events become tasks, speeds
// and radii are drawn per §VI-A, and the quality model is the city-wide
// Jaccard model restricted to the sampled workers.
func (c *City) Sample(r *rand.Rand, p SampleParams, now float64) (*model.Instance, error) {
	if p.NumWorkers > len(c.UserLocs) {
		return nil, fmt.Errorf("meetup: want %d workers, city has %d users", p.NumWorkers, len(c.UserLocs))
	}
	if p.NumTasks > len(c.EventLocs) {
		return nil, fmt.Errorf("meetup: want %d tasks, city has %d events", p.NumTasks, len(c.EventLocs))
	}
	if p.B < 2 || p.Capacity < p.B {
		return nil, fmt.Errorf("meetup: bad B=%d capacity=%d", p.B, p.Capacity)
	}
	users := stats.SampleWithoutReplacement(r, len(c.UserLocs), p.NumWorkers)
	events := stats.SampleWithoutReplacement(r, len(c.EventLocs), p.NumTasks)
	in := &model.Instance{B: p.B, Now: now}
	groups := make([][]int, p.NumWorkers)
	for i, u := range users {
		in.Workers = append(in.Workers, model.Worker{
			ID:     u,
			Loc:    c.UserLocs[u],
			Speed:  stats.TruncGaussian(r, p.SpeedRange[0], p.SpeedRange[1], stats.PaperSigma),
			Radius: stats.TruncGaussian(r, p.RadiusRange[0], p.RadiusRange[1], stats.PaperSigma),
			Arrive: now,
		})
		groups[i] = c.UserGroups[u]
	}
	for j, e := range events {
		in.Tasks = append(in.Tasks, model.Task{
			ID:       e,
			Loc:      c.EventLocs[e],
			Capacity: p.Capacity,
			Created:  now,
			Deadline: now + p.RemainingTime,
		})
		_ = j
	}
	// Quality over the sampled workers only, by local index. The memo layer
	// matters: solvers evaluate the same pair many times and the Jaccard
	// merge is the single hottest operation of a meetup batch.
	in.Quality = coop.NewCached(coop.NewJaccard(groups))
	in.BuildCandidates(model.IndexRTree)
	return in, nil
}

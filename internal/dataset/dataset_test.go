package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

func matrixInstance() *model.Instance {
	q := coop.NewMatrix(3)
	q.Set(0, 1, 0.8)
	q.Set(1, 2, 0.3)
	return &model.Instance{
		Workers: []model.Worker{
			{ID: 10, Loc: geo.Pt(0.1, 0.2), Speed: 0.05, Radius: 0.3},
			{ID: 11, Loc: geo.Pt(0.4, 0.5), Speed: 0.04, Radius: 0.3},
			{ID: 12, Loc: geo.Pt(0.6, 0.6), Speed: 0.03, Radius: 0.3},
		},
		Tasks: []model.Task{
			{ID: 20, Loc: geo.Pt(0.3, 0.3), Capacity: 3, Deadline: 5},
		},
		Quality: q,
		B:       2,
		Now:     1,
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	in := matrixInstance()
	wire := FromModel(in, nil)
	var buf bytes.Buffer
	if err := wire.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := back.ToModel(model.IndexLinear)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workers) != 3 || len(m.Tasks) != 1 || m.B != 2 || m.Now != 1 {
		t.Fatalf("shape lost: %d workers, %d tasks, B=%d", len(m.Workers), len(m.Tasks), m.B)
	}
	if m.Workers[0].ID != 10 || m.Workers[0].Loc != geo.Pt(0.1, 0.2) {
		t.Errorf("worker 0 lost: %+v", m.Workers[0])
	}
	if got := m.Quality.Quality(0, 1); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("quality(0,1) = %v", got)
	}
	if got := m.Quality.Quality(0, 2); got != 0 {
		t.Errorf("quality(0,2) = %v", got)
	}
	if m.WorkerCand == nil {
		t.Error("candidates not built")
	}
}

func TestGroupsRoundTrip(t *testing.T) {
	groups := [][]int{{1, 2}, {2, 3}, {}}
	in := matrixInstance()
	in.Quality = coop.NewJaccard(groups)
	wire := FromModel(in, groups)
	var buf bytes.Buffer
	if err := wire.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Groups form must not embed a dense matrix.
	if strings.Contains(buf.String(), `"quality"`) {
		t.Error("groups instance serialized a dense matrix too")
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := back.ToModel(model.IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	want := in.Quality.Quality(0, 1)
	if got := m.Quality.Quality(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("jaccard quality lost: %v vs %v", got, want)
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	wire := FromModel(matrixInstance(), nil)
	if err := wire.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workers) != 3 {
		t.Errorf("loaded %d workers", len(back.Workers))
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestToModelErrors(t *testing.T) {
	cases := map[string]*Instance{
		"no quality":     {B: 2, Workers: []Worker{{}}, Tasks: []Task{{Capacity: 2}}},
		"bad B":          {B: 0},
		"groups len":     {B: 2, Workers: []Worker{{}, {}}, Groups: [][]int{{1}}},
		"matrix rows":    {B: 2, Workers: []Worker{{}, {}}, Quality: [][]float64{{0, 0.1}}},
		"matrix cols":    {B: 2, Workers: []Worker{{}, {}}, Quality: [][]float64{{0, 1}, {1}}},
		"capacity zero":  {B: 2, Workers: []Worker{{}}, Tasks: []Task{{Capacity: 0}}, Groups: [][]int{{}}},
		"negative speed": {B: 2, Workers: []Worker{{Speed: -1}}, Groups: [][]int{{}}},
	}
	for name, wire := range cases {
		if _, err := wire.ToModel(model.IndexLinear); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

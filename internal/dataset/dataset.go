// Package dataset serializes CA-SC instances and generated cities to JSON
// so the command-line tools can generate once and re-run many experiments
// against identical data.
package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

// Worker is the wire form of model.Worker.
type Worker struct {
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Speed  float64 `json:"speed"`
	Radius float64 `json:"radius"`
	Arrive float64 `json:"arrive"`
}

// Task is the wire form of model.Task.
type Task struct {
	ID       int     `json:"id"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Capacity int     `json:"capacity"`
	Created  float64 `json:"created"`
	Deadline float64 `json:"deadline"`
}

// Instance is the wire form of a full CA-SC batch. Pairwise qualities are
// stored either as explicit group memberships (compact; the Jaccard model
// reconstructs q on the fly) or as a dense matrix for small instances.
type Instance struct {
	B       int         `json:"b"`
	Now     float64     `json:"now"`
	Workers []Worker    `json:"workers"`
	Tasks   []Task      `json:"tasks"`
	Groups  [][]int     `json:"groups,omitempty"`  // per-worker sorted group IDs
	Quality [][]float64 `json:"quality,omitempty"` // dense row-major matrix
}

// FromModel converts a model.Instance. Exactly one of groups/matrix must be
// derivable: pass the per-worker group lists when the instance uses a
// Jaccard model, or nil to snapshot a dense matrix (only sensible for small
// instances).
func FromModel(in *model.Instance, groups [][]int) *Instance {
	out := &Instance{B: in.B, Now: in.Now}
	for _, w := range in.Workers {
		out.Workers = append(out.Workers, Worker{
			ID: w.ID, X: w.Loc.X, Y: w.Loc.Y, Speed: w.Speed, Radius: w.Radius, Arrive: w.Arrive,
		})
	}
	for _, t := range in.Tasks {
		out.Tasks = append(out.Tasks, Task{
			ID: t.ID, X: t.Loc.X, Y: t.Loc.Y, Capacity: t.Capacity, Created: t.Created, Deadline: t.Deadline,
		})
	}
	if groups != nil {
		out.Groups = groups
		return out
	}
	n := len(in.Workers)
	out.Quality = make([][]float64, n)
	for i := 0; i < n; i++ {
		out.Quality[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			out.Quality[i][k] = in.Quality.Quality(i, k)
		}
	}
	return out
}

// ToModel reconstructs a model.Instance with candidate sets built over the
// given index.
func (in *Instance) ToModel(kind model.IndexKind) (*model.Instance, error) {
	if in.B < 1 {
		return nil, fmt.Errorf("dataset: B = %d", in.B)
	}
	m := &model.Instance{B: in.B, Now: in.Now}
	for _, w := range in.Workers {
		m.Workers = append(m.Workers, model.Worker{
			ID: w.ID, Loc: geo.Pt(w.X, w.Y), Speed: w.Speed, Radius: w.Radius, Arrive: w.Arrive,
		})
	}
	for _, t := range in.Tasks {
		m.Tasks = append(m.Tasks, model.Task{
			ID: t.ID, Loc: geo.Pt(t.X, t.Y), Capacity: t.Capacity, Created: t.Created, Deadline: t.Deadline,
		})
	}
	switch {
	case in.Groups != nil:
		if len(in.Groups) != len(in.Workers) {
			return nil, fmt.Errorf("dataset: %d group lists for %d workers", len(in.Groups), len(in.Workers))
		}
		m.Quality = coop.NewJaccard(in.Groups)
	case in.Quality != nil:
		n := len(in.Workers)
		if len(in.Quality) != n {
			return nil, fmt.Errorf("dataset: quality matrix has %d rows for %d workers", len(in.Quality), n)
		}
		q := coop.NewMatrix(n)
		for i := 0; i < n; i++ {
			if len(in.Quality[i]) != n {
				return nil, fmt.Errorf("dataset: quality row %d has %d cols", i, len(in.Quality[i]))
			}
			for k := i + 1; k < n; k++ {
				q.Set(i, k, in.Quality[i][k])
			}
		}
		m.Quality = q
	default:
		return nil, fmt.Errorf("dataset: instance carries neither groups nor quality matrix")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m.BuildCandidates(kind)
	return m, nil
}

// Write encodes the instance as indented JSON.
func (in *Instance) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(in)
}

// Read decodes an instance from JSON.
func Read(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return &in, nil
}

// Save writes the instance to a file.
func (in *Instance) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := in.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads an instance from a file.
func Load(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"casc/internal/geo"
	"casc/internal/metrics"
)

// HTTP-layer metric names. Every route registered on the platform mux is
// wrapped so each request records a counter by route and status code and
// a latency histogram by route.
const (
	MetricHTTPRequests       = "casc_http_requests_total"
	MetricHTTPRequestSeconds = "casc_http_request_seconds"
)

// Handler returns the platform's HTTP API:
//
//	POST /workers   {"x":0.2,"y":0.3,"speed":0.05,"radius":0.1}   → {"id":0}
//	POST /tasks     {"x":0.5,"y":0.5,"capacity":5,"deadline":3}   → {"id":0}
//	POST /batch     {"solver":"GT+ALL"}                           → batch result
//	POST /ratings   {"task_id":0,"score":0.9}                     → {}
//	GET  /quality?i=0&k=1                                         → {"quality":0.5}
//	GET  /status                                                  → snapshot
//	GET  /metrics                                                 → Prometheus text
//
// With Config.EnablePprof, net/http/pprof is mounted under /debug/pprof/.
// Errors are returned as {"error": "..."} with a 4xx status.
func (p *Platform) Handler() http.Handler {
	mux := http.NewServeMux()
	p.route(mux, "POST /workers", p.handleRegisterWorker)
	p.route(mux, "POST /tasks", p.handlePostTask)
	p.route(mux, "POST /batch", p.handleBatch)
	p.route(mux, "POST /ratings", p.handleRate)
	p.route(mux, "GET /quality", p.handleQuality)
	p.route(mux, "GET /recommend", p.handleRecommend)
	p.route(mux, "GET /status", p.handleStatus)
	p.route(mux, "GET /metrics", p.metrics.Handler().ServeHTTP)
	p.registerAdmin(mux)
	if p.pprof {
		// pprof.Index routes /debug/pprof/{heap,goroutine,...} itself.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// route registers pattern with request counting and latency recording.
// The route label is the registration pattern, not the raw URL, so
// cardinality stays bounded no matter what clients request.
func (p *Platform) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	routeLbl := metrics.L("route", pattern)
	lat := p.metrics.Histogram(MetricHTTPRequestSeconds, "HTTP request latency in seconds.",
		metrics.LatencyBuckets(), routeLbl)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		lat.Observe(time.Since(start).Seconds())
		p.metrics.Counter(MetricHTTPRequests, "HTTP requests by route and status code.",
			routeLbl, metrics.L("code", strconv.Itoa(sw.code))).Inc()
	})
}

// statusWriter captures the response status code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// WorkerRequest is the POST /workers body.
type WorkerRequest struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Speed  float64 `json:"speed"`
	Radius float64 `json:"radius"`
}

func (p *Platform) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req WorkerRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := p.RegisterWorker(geo.Pt(req.X, req.Y), req.Speed, req.Radius)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

// TaskRequest is the POST /tasks body.
type TaskRequest struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Capacity int     `json:"capacity"`
	Deadline float64 `json:"deadline"`
}

func (p *Platform) handlePostTask(w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := p.PostTask(geo.Pt(req.X, req.Y), req.Capacity, req.Deadline)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

// BatchRequest is the POST /batch body.
type BatchRequest struct {
	Solver string `json:"solver"`
}

// BatchResponse is the POST /batch reply.
type BatchResponse struct {
	Pairs           []PairJSON `json:"pairs"`
	Score           float64    `json:"score"`
	Upper           float64    `json:"upper"`
	DispatchedTasks int        `json:"dispatched_tasks"`
	ExpiredTasks    int        `json:"expired_tasks"`
}

// PairJSON is one dispatched worker-and-task pair.
type PairJSON struct {
	Worker int `json:"worker"`
	Task   int `json:"task"`
}

func (p *Platform) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Solver == "" {
		req.Solver = "GT+ALL"
	}
	ctx := r.Context()
	if p.solveBudget > 0 {
		// Per-request solve deadline: bounds time queued for the platform
		// lock plus the solve itself.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.solveBudget)
		defer cancel()
	}
	res, err := p.RunBatch(ctx, req.Solver)
	if errors.Is(err, ErrBudgetExhausted) {
		// Degraded, not broken: tell clients when a retry is worth it —
		// one full budget from now, rounded up to whole seconds.
		retry := int64(p.solveBudget / time.Second)
		if p.solveBudget%time.Second != 0 || retry == 0 {
			retry++
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := BatchResponse{
		Score:           res.Score,
		Upper:           res.Upper,
		DispatchedTasks: res.DispatchedTasks,
		ExpiredTasks:    res.ExpiredTasks,
		Pairs:           []PairJSON{},
	}
	for _, pr := range res.Pairs {
		resp.Pairs = append(resp.Pairs, PairJSON{Worker: pr.Worker, Task: pr.Task})
	}
	writeJSON(w, http.StatusOK, resp)
}

// RatingRequest is the POST /ratings body.
type RatingRequest struct {
	TaskID int     `json:"task_id"`
	Score  float64 `json:"score"`
}

func (p *Platform) handleRate(w http.ResponseWriter, r *http.Request) {
	var req RatingRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := p.RateTask(req.TaskID, req.Score); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{})
}

func (p *Platform) handleQuality(w http.ResponseWriter, r *http.Request) {
	i, err1 := strconv.Atoi(r.URL.Query().Get("i"))
	k, err2 := strconv.Atoi(r.URL.Query().Get("k"))
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("quality needs integer i and k params"))
		return
	}
	q, err := p.Quality(i, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"quality": q})
}

func (p *Platform) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.Status())
}

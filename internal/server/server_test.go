package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"casc/internal/geo"
)

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{B: 2})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(Config{B: 1}); err == nil {
		t.Error("B=1 accepted")
	}
}

func TestPlatformFullLifecycle(t *testing.T) {
	p := newTestPlatform(t)
	// Three workers near the center, one far away.
	var ids []int
	for _, loc := range []geo.Point{
		geo.Pt(0.5, 0.5), geo.Pt(0.52, 0.5), geo.Pt(0.5, 0.52), geo.Pt(0.05, 0.05),
	} {
		id, err := p.RegisterWorker(loc, 0.1, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if ids[3] != 3 {
		t.Fatalf("ids not sequential: %v", ids)
	}
	taskID, err := p.PostTask(geo.Pt(0.5, 0.5), 3, 5)
	if err != nil {
		t.Fatal(err)
	}

	res, err := p.RunBatch(context.Background(), "GT")
	if err != nil {
		t.Fatal(err)
	}
	if res.DispatchedTasks != 1 {
		t.Fatalf("dispatched %d tasks", res.DispatchedTasks)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("dispatched %d pairs, want 3 (capacity)", len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if pr.Task != taskID || pr.Worker == 3 {
			t.Fatalf("unexpected pair %+v", pr)
		}
	}
	st := p.Status()
	if st.AvailableWorkers != 1 || st.OpenTasks != 0 || st.DispatchedTasks != 1 {
		t.Fatalf("status %+v", st)
	}

	// Workers are busy until the task is rated.
	if _, err := p.PostTask(geo.Pt(0.5, 0.5), 2, 6); err != nil {
		t.Fatal(err)
	}
	res2, err := p.RunBatch(context.Background(), "TPG")
	if err != nil {
		t.Fatal(err)
	}
	if res2.DispatchedTasks != 0 {
		t.Fatal("dispatched a task with only one available worker")
	}

	// Rating feeds Equation 1 and releases the workers at the task site.
	if err := p.RateTask(taskID, 1.0); err != nil {
		t.Fatal(err)
	}
	q, err := p.Quality(res.Pairs[0].Worker, res.Pairs[1].Worker)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*0.5 + 0.5*1.0
	if math.Abs(q-want) > 1e-12 {
		t.Fatalf("quality after rating = %v, want %v", q, want)
	}
	if got := p.Status().AvailableWorkers; got != 4 {
		t.Fatalf("%d workers available after rating, want 4", got)
	}
	// Double rating rejected.
	if err := p.RateTask(taskID, 0.5); err == nil {
		t.Error("double rating accepted")
	}
}

func TestRatingImprovesFutureAssignments(t *testing.T) {
	// Two disjoint pairs build up good shared history through the rating
	// pathway; a later batch should keep the proven pairs together rather
	// than mixing them.
	p := newTestPlatform(t)
	register := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := p.RegisterWorker(geo.Pt(0.5, 0.5), 0.2, 0.4); err != nil {
				t.Fatal(err)
			}
		}
	}
	dispatchOne := func() int {
		t.Helper()
		tid, err := p.PostTask(geo.Pt(0.5, 0.5), 2, p.Status().Now+2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunBatch(context.Background(), "TPG")
		if err != nil {
			t.Fatal(err)
		}
		if res.DispatchedTasks != 1 {
			t.Fatalf("seeding dispatched %d tasks", res.DispatchedTasks)
		}
		return tid
	}
	// Workers 0,1 register first and are the only pool for task A; while
	// they are busy, workers 2,3 register and serve task B.
	register(2)
	taskA := dispatchOne()
	register(2)
	taskB := dispatchOne()
	if err := p.RateTask(taskA, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := p.RateTask(taskB, 1.0); err != nil {
		t.Fatal(err)
	}

	q01, _ := p.Quality(0, 1)
	q02, _ := p.Quality(0, 2)
	if q01 <= q02 {
		t.Fatalf("rated pair quality %v not above unrated %v", q01, q02)
	}

	// Now two capacity-2 tasks: the platform should pair (0,1) and (2,3).
	if _, err := p.PostTask(geo.Pt(0.45, 0.5), 2, p.Status().Now+2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PostTask(geo.Pt(0.55, 0.5), 2, p.Status().Now+2); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunBatch(context.Background(), "GT")
	if err != nil {
		t.Fatal(err)
	}
	if res.DispatchedTasks != 2 {
		t.Fatalf("dispatched %d tasks, want 2", res.DispatchedTasks)
	}
	groupOf := map[int]int{}
	for _, pr := range res.Pairs {
		groupOf[pr.Worker] = pr.Task
	}
	if groupOf[0] != groupOf[1] || groupOf[2] != groupOf[3] || groupOf[0] == groupOf[2] {
		t.Fatalf("proven pairs were split: %v", groupOf)
	}
}

func TestPostTaskValidation(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.PostTask(geo.Pt(0.5, 0.5), 1, 5); err == nil {
		t.Error("capacity below B accepted")
	}
	if _, err := p.PostTask(geo.Pt(0.5, 0.5), 3, 0); err == nil {
		t.Error("past deadline accepted")
	}
	if _, err := p.RegisterWorker(geo.Pt(0, 0), -1, 0.1); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestExpiredTasksDropped(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.PostTask(geo.Pt(0.5, 0.5), 2, 0.5); err != nil {
		t.Fatal(err)
	}
	// Advance the internal clock by one batch.
	if _, err := p.RunBatch(context.Background(), "RAND"); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunBatch(context.Background(), "RAND")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredTasks != 1 {
		t.Fatalf("expired %d tasks, want 1", res.ExpiredTasks)
	}
	if p.Status().OpenTasks != 0 {
		t.Error("expired task still open")
	}
}

func TestRunBatchUnknownSolver(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.RunBatch(context.Background(), "SIMPLEX"); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestQualityValidation(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.RegisterWorker(geo.Pt(0, 0), 0.1, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Quality(0, 0); err == nil {
		t.Error("self pair accepted")
	}
	if _, err := p.Quality(0, 9); err == nil {
		t.Error("unknown worker accepted")
	}
}

func TestConcurrentUse(t *testing.T) {
	p := newTestPlatform(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, _ = p.RegisterWorker(geo.Pt(0.5, 0.5), 0.1, 0.2)
				_, _ = p.PostTask(geo.Pt(0.5, 0.5), 2, p.Status().Now+3)
				_, _ = p.RunBatch(context.Background(), "TPG")
			}
		}(g)
	}
	wg.Wait()
	if p.Status().Batches != 160 {
		t.Errorf("ran %d batches, want 160", p.Status().Batches)
	}
}

// ---- HTTP layer ----

func httpJSON(t *testing.T, srv *httptest.Server, method, path string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, srv.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v", method, path, err)
	}
	return resp.StatusCode, out
}

func TestHTTPEndToEnd(t *testing.T) {
	p := newTestPlatform(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		code, out := httpJSON(t, srv, "POST", "/workers",
			WorkerRequest{X: 0.5 + float64(i)*0.01, Y: 0.5, Speed: 0.1, Radius: 0.2})
		if code != http.StatusCreated {
			t.Fatalf("worker %d: status %d %v", i, code, out)
		}
	}
	code, out := httpJSON(t, srv, "POST", "/tasks", TaskRequest{X: 0.5, Y: 0.5, Capacity: 3, Deadline: 5})
	if code != http.StatusCreated {
		t.Fatalf("task: status %d %v", code, out)
	}

	code, out = httpJSON(t, srv, "POST", "/batch", BatchRequest{Solver: "GT+ALL"})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d %v", code, out)
	}
	var pairs []PairJSON
	if err := json.Unmarshal(out["pairs"], &pairs); err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("batch dispatched %d pairs, want 3", len(pairs))
	}

	code, _ = httpJSON(t, srv, "POST", "/ratings", RatingRequest{TaskID: pairs[0].Task, Score: 0.9})
	if code != http.StatusOK {
		t.Fatalf("rating: status %d", code)
	}
	code, out = httpJSON(t, srv, "GET",
		fmt.Sprintf("/quality?i=%d&k=%d", pairs[0].Worker, pairs[1].Worker), nil)
	if code != http.StatusOK {
		t.Fatalf("quality: status %d %v", code, out)
	}
	var q float64
	if err := json.Unmarshal(out["quality"], &q); err != nil {
		t.Fatal(err)
	}
	if want := 0.25 + 0.5*0.9; math.Abs(q-want) > 1e-12 {
		t.Fatalf("quality = %v, want %v", q, want)
	}

	code, out = httpJSON(t, srv, "GET", "/status", nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	var batches int
	if err := json.Unmarshal(out["batches"], &batches); err != nil {
		t.Fatal(err)
	}
	if batches != 1 {
		t.Fatalf("batches = %d", batches)
	}
}

func TestHTTPErrors(t *testing.T) {
	p := newTestPlatform(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	cases := []struct {
		method, path string
		body         any
		wantStatus   int
	}{
		{"POST", "/workers", map[string]any{"x": 0.1, "bogus": 1}, http.StatusBadRequest},
		{"POST", "/tasks", TaskRequest{Capacity: 0, Deadline: 5}, http.StatusBadRequest},
		{"POST", "/batch", BatchRequest{Solver: "NOPE"}, http.StatusBadRequest},
		{"POST", "/ratings", RatingRequest{TaskID: 99, Score: 0.5}, http.StatusConflict},
		{"GET", "/quality?i=abc&k=1", nil, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, out := httpJSON(t, srv, tc.method, tc.path, tc.body)
		if code != tc.wantStatus {
			t.Errorf("%s %s: status %d (%v), want %d", tc.method, tc.path, code, out, tc.wantStatus)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("%s %s: error body missing", tc.method, tc.path)
		}
	}
}

func TestHTTPBatchDefaultsSolver(t *testing.T) {
	p := newTestPlatform(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	code, _ := httpJSON(t, srv, "POST", "/batch", map[string]any{})
	if code != http.StatusOK {
		t.Fatalf("empty-solver batch: status %d", code)
	}
}

func TestRunBatchParallelExposesComponentGauges(t *testing.T) {
	p, err := NewPlatform(Config{B: 2, Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range []geo.Point{
		geo.Pt(0.2, 0.2), geo.Pt(0.22, 0.2), // cluster 1
		geo.Pt(0.8, 0.8), geo.Pt(0.8, 0.82), // cluster 2
	} {
		if _, err := p.RegisterWorker(loc, 0.1, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.PostTask(geo.Pt(0.21, 0.21), 2, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PostTask(geo.Pt(0.8, 0.81), 2, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunBatch(context.Background(), "TPG"); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rr.Code)
	}
	body := rr.Body.String()
	for _, name := range []string{
		"casc_parallel_components",
		"casc_parallel_component_size",
		"casc_parallel_component_solve_seconds",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("GET /metrics missing %s", name)
		}
	}
	if !strings.Contains(body, `casc_parallel_components{solver="TPG"} 2`) {
		t.Errorf("component gauge should report the two spatial clusters; body:\n%s", body)
	}
}

// TestSolveBudgetNormalRequestsUnaffected: a generous budget leaves the
// batch endpoint behaving exactly as before — the ladder's primary rung
// finishes in budget and is returned.
func TestSolveBudgetNormalRequestsUnaffected(t *testing.T) {
	p, err := NewPlatform(Config{B: 2, SolveBudget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range []geo.Point{geo.Pt(0.5, 0.5), geo.Pt(0.52, 0.5)} {
		if _, err := p.RegisterWorker(loc, 0.1, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.PostTask(geo.Pt(0.5, 0.5), 2, 5); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	code, body := httpJSON(t, srv, http.MethodPost, "/batch", map[string]string{"solver": "GT"})
	if code != http.StatusOK {
		t.Fatalf("budgeted batch returned %d: %v", code, body)
	}
}

// TestSolveBudgetExhaustedReturns503 drives the degraded path end to end:
// a request whose deadline has already passed when RunBatch reaches the
// platform lock must get 503 with a Retry-After header, and nothing may
// be dispatched.
func TestSolveBudgetExhaustedReturns503(t *testing.T) {
	p, err := NewPlatform(Config{B: 2, SolveBudget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range []geo.Point{geo.Pt(0.5, 0.5), geo.Pt(0.52, 0.5)} {
		if _, err := p.RegisterWorker(loc, 0.1, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.PostTask(geo.Pt(0.5, 0.5), 2, 5); err != nil {
		t.Fatal(err)
	}

	// Unit level: a cancelled context at the lock means ErrBudgetExhausted.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunBatch(ctx, "GT"); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("RunBatch with dead ctx: err = %v, want ErrBudgetExhausted", err)
	}

	// HTTP level: a pre-cancelled request context is exactly what an
	// expired deadline looks like to RunBatch.
	req := httptest.NewRequest(http.MethodPost, "/batch",
		strings.NewReader(`{"solver":"GT"}`)).WithContext(ctx)
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", rr.Code, rr.Body.String())
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After header")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", ra)
	}
	if st := p.Status(); st.DispatchedTasks != 0 {
		t.Errorf("exhausted request dispatched %d tasks", st.DispatchedTasks)
	}
}

// Package server exposes the CA-SC platform over HTTP: workers register
// with their locations and working areas, requesters post time-constrained
// multi-worker tasks, the platform runs batch assignments with any of the
// paper's solvers, and requesters rate finished tasks — ratings feed the
// Equation 1 cooperation-quality estimator, closing the loop the paper
// describes ("platforms allow task requesters to rate the results").
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/resilience"
)

// Platform is the in-memory spatial crowdsourcing platform. All methods
// are safe for concurrent use.
type Platform struct {
	mu          sync.RWMutex
	b           int
	parallelism int           // Config.Parallelism
	solveBudget time.Duration // Config.SolveBudget
	history     *coop.History
	clock       func() float64

	workers      map[int]model.Worker // available workers by ID
	tasks        map[int]model.Task   // open tasks by ID
	nextWorkerID int
	nextTaskID   int

	// dispatched remembers which workers served each dispatched task (and
	// their full records) so a later rating can be attributed to the right
	// pairs and the workers can rejoin the pool at the task's location.
	dispatched map[int]dispatchedGroup
	rated      map[int]bool

	totalScore      float64
	batches         int
	dispatchedTasks int
	busyCount       int // workers on dispatched, unrated tasks

	// advance steps the default internal clock; nil when Config.Clock was
	// supplied by the caller.
	advance func()

	metrics *metrics.Registry
	pprof   bool
	pm      platformMetrics
}

// platformMetrics holds the platform's resolved metric handles.
type platformMetrics struct {
	registered *metrics.Counter
	posted     *metrics.Counter
	batches    *metrics.Counter
	dispatched *metrics.Counter
	pairs      *metrics.Counter
	expired    *metrics.Counter
	ratings    *metrics.Counter
	availGauge *metrics.Gauge
	busyGauge  *metrics.Gauge
	openGauge  *metrics.Gauge
	scoreGauge *metrics.Gauge
}

// Metric names recorded by the platform. HTTP-layer names live in http.go.
const (
	MetricWorkersRegistered = "casc_platform_workers_registered_total"
	MetricTasksPosted       = "casc_platform_tasks_posted_total"
	MetricBatches           = "casc_platform_batches_total"
	MetricDispatchedTasks   = "casc_platform_dispatched_tasks_total"
	MetricDispatchedPairs   = "casc_platform_dispatched_pairs_total"
	MetricExpiredTasks      = "casc_platform_expired_tasks_total"
	MetricRatings           = "casc_platform_ratings_total"
	MetricAvailableWorkers  = "casc_platform_available_workers"
	MetricBusyWorkers       = "casc_platform_busy_workers"
	MetricOpenTasks         = "casc_platform_open_tasks"
	MetricTotalScore        = "casc_platform_total_score"
)

// Config configures a Platform.
type Config struct {
	// B is the least required number of workers per task (≥ 2).
	B int
	// Alpha and Omega parameterize the Equation 1 estimator (default 0.5
	// each, the paper's configuration).
	Alpha, Omega float64
	// Clock returns the current platform time; defaults to a monotonic
	// batch counter advanced by RunBatch (useful for tests and demos).
	Clock func() float64
	// Metrics receives the platform's instrumentation and is served by
	// GET /metrics. Defaults to a fresh registry per platform; pass a
	// shared one to aggregate several platforms into one scrape target.
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// platform mux. Off by default: profiling endpoints expose internals
	// and cost CPU, so production deployments opt in explicitly.
	EnablePprof bool
	// Parallelism, when non-zero, decomposes each batch into the connected
	// components of its validity graph and solves them concurrently
	// (assign.NewParallel): positive values bound the pool, negative use
	// runtime.GOMAXPROCS(0). The component gauges appear on GET /metrics.
	Parallelism int
	// SolveBudget, when positive, bounds each POST /batch solve: the
	// request runs under a context deadline of this duration and the
	// solver is wrapped in a resilience.Ladder (solver → TPG → RAND), so
	// a slow solve degrades to cheaper rungs instead of queueing without
	// bound. A request whose budget is exhausted — the deadline passed
	// while queued for the platform lock, or no ladder rung produced a
	// feasible result — fails with ErrBudgetExhausted, which the HTTP
	// layer maps to 503 with a Retry-After header.
	SolveBudget time.Duration
}

// NewPlatform returns an empty platform.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.B < 2 {
		return nil, fmt.Errorf("server: B = %d, want ≥ 2", cfg.B)
	}
	if cfg.Alpha == 0 && cfg.Omega == 0 {
		cfg.Alpha, cfg.Omega = 0.5, 0.5
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	p := &Platform{
		b:           cfg.B,
		parallelism: cfg.Parallelism,
		solveBudget: cfg.SolveBudget,
		history:     coop.NewHistory(0, cfg.Alpha, cfg.Omega),
		clock:       cfg.Clock,
		workers:     make(map[int]model.Worker),
		tasks:       make(map[int]model.Task),
		dispatched:  make(map[int]dispatchedGroup),
		rated:       make(map[int]bool),
		metrics:     reg,
		pprof:       cfg.EnablePprof,
		pm: platformMetrics{
			registered: reg.Counter(MetricWorkersRegistered, "Workers ever registered."),
			posted:     reg.Counter(MetricTasksPosted, "Tasks ever posted."),
			batches:    reg.Counter(MetricBatches, "RunBatch calls completed."),
			dispatched: reg.Counter(MetricDispatchedTasks, "Tasks dispatched with ≥ B workers."),
			pairs:      reg.Counter(MetricDispatchedPairs, "Worker-and-task pairs dispatched."),
			expired:    reg.Counter(MetricExpiredTasks, "Tasks dropped past their deadline."),
			ratings:    reg.Counter(MetricRatings, "Requester ratings recorded."),
			availGauge: reg.Gauge(MetricAvailableWorkers, "Workers currently available."),
			busyGauge:  reg.Gauge(MetricBusyWorkers, "Workers on dispatched, unrated tasks."),
			openGauge:  reg.Gauge(MetricOpenTasks, "Tasks currently open."),
			scoreGauge: reg.Gauge(MetricTotalScore, "Cumulative cooperation score."),
		},
	}
	if p.clock == nil {
		batch := 0.0
		p.clock = func() float64 { return batch }
		// RunBatch advances this implicit clock via advanceClock.
		p.advance = func() { batch++ }
	}
	return p, nil
}

// Metrics returns the platform's metrics registry (the one GET /metrics
// serves).
func (p *Platform) Metrics() *metrics.Registry { return p.metrics }

// syncGauges refreshes the state gauges. Callers must hold p.mu.
func (p *Platform) syncGauges() {
	p.pm.availGauge.Set(float64(len(p.workers)))
	p.pm.busyGauge.Set(float64(p.busyCount))
	p.pm.openGauge.Set(float64(len(p.tasks)))
	p.pm.scoreGauge.Set(p.totalScore)
}

// RegisterWorker adds an available worker and returns its ID.
func (p *Platform) RegisterWorker(loc geo.Point, speed, radius float64) (int, error) {
	if speed < 0 || radius < 0 {
		return 0, fmt.Errorf("server: negative speed or radius")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextWorkerID
	p.nextWorkerID++
	p.history.Grow(p.nextWorkerID)
	p.workers[id] = model.Worker{
		ID: id, Loc: loc, Speed: speed, Radius: radius, Arrive: p.clock(),
	}
	p.pm.registered.Inc()
	p.syncGauges()
	return id, nil
}

// PostTask adds an open task and returns its ID. Deadline is absolute
// platform time.
func (p *Platform) PostTask(loc geo.Point, capacity int, deadline float64) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if capacity < p.b {
		return 0, fmt.Errorf("server: capacity %d below B=%d", capacity, p.b)
	}
	if deadline <= p.clock() {
		return 0, fmt.Errorf("server: deadline %v not in the future (now %v)", deadline, p.clock())
	}
	id := p.nextTaskID
	p.nextTaskID++
	p.tasks[id] = model.Task{
		ID: id, Loc: loc, Capacity: capacity, Created: p.clock(), Deadline: deadline,
	}
	p.pm.posted.Inc()
	p.syncGauges()
	return id, nil
}

// dispatchedGroup snapshots a dispatched task's worker group.
type dispatchedGroup struct {
	ids     []int
	workers []model.Worker
	loc     geo.Point
}

// BatchResult reports one RunBatch call.
type BatchResult struct {
	Pairs           []model.Pair // worker ID → task ID pairs actually dispatched
	Score           float64
	Upper           float64
	DispatchedTasks int
	ExpiredTasks    int
}

// ErrBudgetExhausted reports a RunBatch whose Config.SolveBudget ran out
// with nothing to show: either the request's deadline passed while it was
// queued for the platform lock, or every ladder rung failed or overran its
// slice. The HTTP layer maps it to 503 Service Unavailable + Retry-After.
var ErrBudgetExhausted = errors.New("server: solve budget exhausted")

// RunBatch executes one batch of Algorithm 1 with the named solver: expired
// tasks are dropped, the current available workers and open tasks form an
// instance, groups reaching B are dispatched (their workers leave the pool,
// the tasks await ratings). Returns the dispatched pairs with *external*
// worker and task IDs. With Config.SolveBudget set, the solve runs under a
// resilience.Ladder and ErrBudgetExhausted is returned — dispatching
// nothing — when the budget is gone before any rung delivers.
func (p *Platform) RunBatch(ctx context.Context, solverName string) (*BatchResult, error) {
	seed := int64(p.batchCount())
	solver, err := assign.ByName(solverName, seed)
	if err != nil {
		return nil, err
	}
	if p.parallelism != 0 {
		workers := p.parallelism
		if workers < 0 {
			workers = 0 // NewParallel resolves 0 to GOMAXPROCS
		}
		solver = assign.NewParallel(solver, assign.ParallelOptions{
			Workers: workers,
			Seed:    seed,
		})
	}
	solver = assign.Instrument(solver, p.metrics)
	var ladder *resilience.Ladder
	if p.solveBudget > 0 {
		ladder, err = resilience.NewLadder(
			resilience.Config{Budget: p.solveBudget, Metrics: p.metrics},
			resilience.Chain(solver, seed)...)
		if err != nil {
			return nil, err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ctx.Err() != nil {
		// The request's solve deadline expired while it was queued for the
		// lock: refuse instead of solving with no budget left.
		return nil, fmt.Errorf("%w: deadline passed while queued", ErrBudgetExhausted)
	}
	now := p.clock()

	res := &BatchResult{}
	for id, t := range p.tasks {
		if t.Deadline <= now {
			delete(p.tasks, id)
			res.ExpiredTasks++
		}
	}

	// Dense instance over current state.
	workerIDs := make([]int, 0, len(p.workers))
	for id := range p.workers {
		workerIDs = append(workerIDs, id)
	}
	sort.Ints(workerIDs)
	taskIDs := make([]int, 0, len(p.tasks))
	for id := range p.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)

	in := &model.Instance{B: p.b, Now: now}
	for _, id := range workerIDs {
		in.Workers = append(in.Workers, p.workers[id])
	}
	for _, id := range taskIDs {
		in.Tasks = append(in.Tasks, p.tasks[id])
	}
	in.Quality = coop.NewCached(coop.NewSubset(p.history, workerIDs))
	in.BuildCandidates(model.IndexRTree)

	var a *model.Assignment
	if ladder != nil {
		var out resilience.Outcome
		a, out = ladder.SolveBudgeted(ctx, in)
		if out.Exhausted {
			return nil, fmt.Errorf("%w: no rung finished within %v", ErrBudgetExhausted, p.solveBudget)
		}
	} else {
		a, err = solver.Solve(ctx, in)
		if err != nil {
			return nil, err
		}
	}
	res.Upper = assign.Upper(in)

	for ti, ws := range a.TaskWorkers {
		if len(ws) < p.b {
			continue // below B: keep the task open and the workers available
		}
		taskID := taskIDs[ti]
		grp := dispatchedGroup{loc: in.Tasks[ti].Loc}
		for _, wi := range ws {
			workerID := workerIDs[wi]
			grp.ids = append(grp.ids, workerID)
			grp.workers = append(grp.workers, p.workers[workerID])
			delete(p.workers, workerID)
			p.busyCount++
			res.Pairs = append(res.Pairs, model.Pair{Worker: workerID, Task: taskID})
		}
		sort.Ints(grp.ids)
		res.Score += in.GroupQuality(ws, in.Tasks[ti].Capacity)
		p.dispatched[taskID] = grp
		delete(p.tasks, taskID)
		res.DispatchedTasks++
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].Task != res.Pairs[j].Task {
			return res.Pairs[i].Task < res.Pairs[j].Task
		}
		return res.Pairs[i].Worker < res.Pairs[j].Worker
	})
	p.totalScore += res.Score
	p.batches++
	p.dispatchedTasks += res.DispatchedTasks
	p.pm.batches.Inc()
	p.pm.dispatched.Add(uint64(res.DispatchedTasks))
	p.pm.pairs.Add(uint64(len(res.Pairs)))
	p.pm.expired.Add(uint64(res.ExpiredTasks))
	p.syncGauges()
	if p.advance != nil {
		p.advance()
	}
	return res, nil
}

func (p *Platform) batchCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.batches
}

// RateTask records the requester's rating s ∈ [0,1] for a dispatched task.
// Every worker pair of the group receives the rating per Equation 1; the
// workers rejoin the pool at the task's location.
func (p *Platform) RateTask(taskID int, score float64) error {
	if score < 0 || score > 1 {
		return fmt.Errorf("server: rating %v outside [0,1]", score)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	grp, ok := p.dispatched[taskID]
	if !ok {
		return fmt.Errorf("server: task %d was not dispatched", taskID)
	}
	if p.rated[taskID] {
		return fmt.Errorf("server: task %d already rated", taskID)
	}
	p.rated[taskID] = true
	p.history.RecordGroup(grp.ids, score)
	// The group finished the job: its workers become available again at the
	// task's location.
	for _, w := range grp.workers {
		w.Loc = grp.loc
		w.Arrive = p.clock()
		p.workers[w.ID] = w
	}
	p.busyCount -= len(grp.workers)
	p.pm.ratings.Inc()
	p.syncGauges()
	return nil
}

// Quality returns the current Equation 1 estimate for two workers.
func (p *Platform) Quality(i, k int) (float64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if i == k || i < 0 || k < 0 || i >= p.nextWorkerID || k >= p.nextWorkerID {
		return 0, fmt.Errorf("server: bad worker pair (%d,%d)", i, k)
	}
	return p.history.Quality(i, k), nil
}

// Status is a platform snapshot.
type Status struct {
	AvailableWorkers int     `json:"available_workers"`
	OpenTasks        int     `json:"open_tasks"`
	Batches          int     `json:"batches"`
	DispatchedTasks  int     `json:"dispatched_tasks"`
	TotalScore       float64 `json:"total_score"`
	Now              float64 `json:"now"`
}

// Status reports the platform snapshot. Reads take the shared lock, so
// status polls (and the other read-only endpoints) proceed concurrently
// with each other and never queue behind one another during a long solve.
func (p *Platform) Status() Status {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return Status{
		AvailableWorkers: len(p.workers),
		OpenTasks:        len(p.tasks),
		Batches:          p.batches,
		DispatchedTasks:  p.dispatchedTasks,
		TotalScore:       p.totalScore,
		Now:              p.clock(),
	}
}

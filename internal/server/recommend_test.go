package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"casc/internal/geo"
)

func TestRecommendRanksByHistory(t *testing.T) {
	p := newTestPlatform(t)
	// Worker 0 is the one asking; workers 1 and 2 are potential partners.
	for i := 0; i < 3; i++ {
		if _, err := p.RegisterWorker(geo.Pt(0.5, 0.5), 0.2, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	// Two tasks, both reachable. Task A near worker group with good
	// history, task B identical geometry.
	taskA, err := p.PostTask(geo.Pt(0.45, 0.5), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	taskB, err := p.PostTask(geo.Pt(0.55, 0.5), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := p.Recommend(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d recommendations, want 2 (tasks %d,%d)", len(recs), taskA, taskB)
	}
	// No history yet: utilities equal (prior), ties broken by distance —
	// both tasks are 0.05 away, so any order is fine, but utility must be
	// the prior-derived value 2·(B−1)·ω/(B−1) = 2ω = 1.0 with B=2.
	for _, r := range recs {
		if r.Utility <= 0 {
			t.Fatalf("zero utility: %+v", r)
		}
	}

	// Give workers 0 and 1 great history; the preview utility must rise.
	p.history.Grow(3)
	p.history.Record(0, 1, 1.0)
	p.history.Record(0, 1, 1.0)
	recs2, err := p.Recommend(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if recs2[0].Utility <= recs[0].Utility {
		t.Errorf("history did not raise the preview utility: %v vs %v",
			recs2[0].Utility, recs[0].Utility)
	}
}

func TestRecommendFiltersInvalid(t *testing.T) {
	p := newTestPlatform(t)
	// A worker with a tiny radius: the far task must not be recommended.
	if _, err := p.RegisterWorker(geo.Pt(0.1, 0.1), 0.2, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterWorker(geo.Pt(0.1, 0.1), 0.2, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PostTask(geo.Pt(0.9, 0.9), 2, 5); err != nil {
		t.Fatal(err)
	}
	near, err := p.PostTask(geo.Pt(0.12, 0.12), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := p.Recommend(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TaskID != near {
		t.Fatalf("recommendations: %+v, want only task %d", recs, near)
	}
	// A worker alone (no possible partners) gets nothing.
	if err := p.UnregisterWorker(1); err != nil {
		t.Fatal(err)
	}
	recs, err = p.Recommend(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("lone worker got recommendations: %+v", recs)
	}
}

func TestRecommendErrorsAndHTTP(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.Recommend(5, 3); err == nil {
		t.Error("unknown worker accepted")
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	code, _ := httpJSON(t, srv, "GET", "/recommend?worker=abc", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad worker param: %d", code)
	}
	code, _ = httpJSON(t, srv, "GET", "/recommend?worker=9", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown worker: %d", code)
	}
	// A valid request returns an array (possibly empty).
	if _, err := p.RegisterWorker(geo.Pt(0.5, 0.5), 0.1, 0.2); err != nil {
		t.Fatal(err)
	}
	code, out := httpJSON(t, srv, "GET", "/recommend?worker=0&limit=5", nil)
	if code != http.StatusOK {
		t.Fatalf("recommend: %d", code)
	}
	var recs []Recommendation
	if err := json.Unmarshal(out["recommendations"], &recs); err != nil {
		t.Fatal(err)
	}
	code, _ = httpJSON(t, srv, "GET", "/recommend?worker=0&limit=zero", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad limit: %d", code)
	}
}

func TestRecommendLimit(t *testing.T) {
	p := newTestPlatform(t)
	for i := 0; i < 2; i++ {
		if _, err := p.RegisterWorker(geo.Pt(0.5, 0.5), 0.2, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 8; j++ {
		if _, err := p.PostTask(geo.Pt(0.4+float64(j)*0.02, 0.5), 2, 5); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := p.Recommend(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("limit ignored: %d recs", len(recs))
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

// This file adds the platform operations a production deployment needs
// beyond the core register/post/assign/rate loop: worker location updates
// and deregistration, task cancellation, and state snapshots (the rating
// history is the platform's most valuable asset; losing it resets every
// quality estimate to the prior).

// UpdateWorker moves an available worker to a new location and optionally
// changes its speed/radius (pass negative values to keep the current ones).
// Busy workers (dispatched, not yet rated) cannot be updated.
func (p *Platform) UpdateWorker(id int, loc geo.Point, speed, radius float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok {
		return fmt.Errorf("server: worker %d not available (unknown or busy)", id)
	}
	w.Loc = loc
	if speed >= 0 {
		w.Speed = speed
	}
	if radius >= 0 {
		w.Radius = radius
	}
	w.Arrive = p.clock()
	p.workers[id] = w
	return nil
}

// UnregisterWorker removes an available worker from the pool. Busy workers
// cannot leave until their task is rated.
func (p *Platform) UnregisterWorker(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.workers[id]; !ok {
		return fmt.Errorf("server: worker %d not available (unknown or busy)", id)
	}
	delete(p.workers, id)
	p.syncGauges()
	return nil
}

// CancelTask withdraws an open (not yet dispatched) task.
func (p *Platform) CancelTask(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tasks[id]; !ok {
		return fmt.Errorf("server: task %d not open", id)
	}
	delete(p.tasks, id)
	p.syncGauges()
	return nil
}

// Snapshot is the serializable platform state. Dispatched-but-unrated
// groups are included so pending ratings survive a restart.
type Snapshot struct {
	B            int               `json:"b"`
	NextWorkerID int               `json:"next_worker_id"`
	NextTaskID   int               `json:"next_task_id"`
	Now          float64           `json:"now"`
	Workers      []SnapshotWorker  `json:"workers"`
	Tasks        []SnapshotTask    `json:"tasks"`
	History      []coop.PairRecord `json:"history"`
	Dispatched   []SnapshotGroup   `json:"dispatched"`
	TotalScore   float64           `json:"total_score"`
	Batches      int               `json:"batches"`
	DoneTasks    int               `json:"done_tasks"`
}

// SnapshotWorker is one available worker.
type SnapshotWorker struct {
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Speed  float64 `json:"speed"`
	Radius float64 `json:"radius"`
	Arrive float64 `json:"arrive"`
}

// SnapshotTask is one open task.
type SnapshotTask struct {
	ID       int     `json:"id"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Capacity int     `json:"capacity"`
	Created  float64 `json:"created"`
	Deadline float64 `json:"deadline"`
}

// SnapshotGroup is one dispatched, unrated task group.
type SnapshotGroup struct {
	TaskID  int              `json:"task_id"`
	X       float64          `json:"x"`
	Y       float64          `json:"y"`
	Workers []SnapshotWorker `json:"workers"`
}

// Snapshot captures the platform state.
func (p *Platform) Snapshot() *Snapshot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := &Snapshot{
		B:            p.b,
		NextWorkerID: p.nextWorkerID,
		NextTaskID:   p.nextTaskID,
		Now:          p.clock(),
		History:      p.history.Export(),
		TotalScore:   p.totalScore,
		Batches:      p.batches,
		DoneTasks:    p.dispatchedTasks,
	}
	for id, w := range p.workers {
		s.Workers = append(s.Workers, SnapshotWorker{
			ID: id, X: w.Loc.X, Y: w.Loc.Y, Speed: w.Speed, Radius: w.Radius, Arrive: w.Arrive,
		})
	}
	sort.Slice(s.Workers, func(a, b int) bool { return s.Workers[a].ID < s.Workers[b].ID })
	for id, t := range p.tasks {
		s.Tasks = append(s.Tasks, SnapshotTask{
			ID: id, X: t.Loc.X, Y: t.Loc.Y, Capacity: t.Capacity, Created: t.Created, Deadline: t.Deadline,
		})
	}
	sort.Slice(s.Tasks, func(a, b int) bool { return s.Tasks[a].ID < s.Tasks[b].ID })
	for taskID, grp := range p.dispatched {
		if p.rated[taskID] {
			continue
		}
		sg := SnapshotGroup{TaskID: taskID, X: grp.loc.X, Y: grp.loc.Y}
		for _, w := range grp.workers {
			sg.Workers = append(sg.Workers, SnapshotWorker{
				ID: w.ID, X: w.Loc.X, Y: w.Loc.Y, Speed: w.Speed, Radius: w.Radius, Arrive: w.Arrive,
			})
		}
		sort.Slice(sg.Workers, func(a, b int) bool { return sg.Workers[a].ID < sg.Workers[b].ID })
		s.Dispatched = append(s.Dispatched, sg)
	}
	sort.Slice(s.Dispatched, func(a, b int) bool { return s.Dispatched[a].TaskID < s.Dispatched[b].TaskID })
	return s
}

// Restore builds a platform from a snapshot. The restored platform uses
// the default batch-counter clock starting at the snapshot time unless
// cfg.Clock is provided.
func Restore(s *Snapshot, cfg Config) (*Platform, error) {
	if s.B < 2 {
		return nil, fmt.Errorf("server: snapshot B = %d", s.B)
	}
	cfg.B = s.B
	p, err := NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		// Resume the internal clock at the snapshot time.
		batch := s.Now
		p.clock = func() float64 { return batch }
		p.advance = func() { batch++ }
	}
	p.nextWorkerID = s.NextWorkerID
	p.nextTaskID = s.NextTaskID
	p.totalScore = s.TotalScore
	p.batches = s.Batches
	p.dispatchedTasks = s.DoneTasks
	p.history.Grow(s.NextWorkerID)
	if err := p.history.Import(s.History); err != nil {
		return nil, err
	}
	for _, w := range s.Workers {
		if w.ID < 0 || w.ID >= s.NextWorkerID {
			return nil, fmt.Errorf("server: snapshot worker %d out of ID range", w.ID)
		}
		p.workers[w.ID] = model.Worker{
			ID: w.ID, Loc: geo.Pt(w.X, w.Y), Speed: w.Speed, Radius: w.Radius, Arrive: w.Arrive,
		}
	}
	for _, t := range s.Tasks {
		if t.ID < 0 || t.ID >= s.NextTaskID {
			return nil, fmt.Errorf("server: snapshot task %d out of ID range", t.ID)
		}
		p.tasks[t.ID] = model.Task{
			ID: t.ID, Loc: geo.Pt(t.X, t.Y), Capacity: t.Capacity, Created: t.Created, Deadline: t.Deadline,
		}
	}
	for _, g := range s.Dispatched {
		grp := dispatchedGroup{loc: geo.Pt(g.X, g.Y)}
		for _, w := range g.Workers {
			grp.ids = append(grp.ids, w.ID)
			grp.workers = append(grp.workers, model.Worker{
				ID: w.ID, Loc: geo.Pt(w.X, w.Y), Speed: w.Speed, Radius: w.Radius, Arrive: w.Arrive,
			})
		}
		p.dispatched[g.TaskID] = grp
		p.busyCount += len(grp.workers)
	}
	p.syncGauges()
	return p, nil
}

// SaveSnapshot writes the snapshot as JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// SaveFile writes the snapshot to a file.
func (s *Snapshot) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadSnapshot reads a snapshot from JSON.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	return &s, nil
}

// LoadSnapshotFile reads a snapshot from a file.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f)
}

// ListWorkers returns the available workers sorted by ID.
func (p *Platform) ListWorkers() []SnapshotWorker {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]SnapshotWorker, 0, len(p.workers))
	for id, w := range p.workers {
		out = append(out, SnapshotWorker{
			ID: id, X: w.Loc.X, Y: w.Loc.Y, Speed: w.Speed, Radius: w.Radius, Arrive: w.Arrive,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ListTasks returns the open tasks sorted by ID.
func (p *Platform) ListTasks() []SnapshotTask {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]SnapshotTask, 0, len(p.tasks))
	for id, t := range p.tasks {
		out = append(out, SnapshotTask{
			ID: id, X: t.Loc.X, Y: t.Loc.Y, Capacity: t.Capacity, Created: t.Created, Deadline: t.Deadline,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Admin HTTP endpoints (wired by Handler via registerAdmin):
//
//	GET    /workers                   → available workers
//	GET    /tasks                     → open tasks
//	PUT    /workers/{id}   {"x":..,"y":..,"speed":..,"radius":..}
//	DELETE /workers/{id}
//	DELETE /tasks/{id}
//	GET    /snapshot                  → full state JSON
func (p *Platform) registerAdmin(mux *http.ServeMux) {
	p.route(mux, "GET /workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"workers": p.ListWorkers()})
	})
	p.route(mux, "GET /tasks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"tasks": p.ListTasks()})
	})
	p.route(mux, "PUT /workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := pathID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var req WorkerRequest
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := p.UpdateWorker(id, geo.Pt(req.X, req.Y), req.Speed, req.Radius); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{})
	})
	p.route(mux, "DELETE /workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := pathID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := p.UnregisterWorker(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{})
	})
	p.route(mux, "DELETE /tasks/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := pathID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := p.CancelTask(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{})
	})
	p.route(mux, "GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Snapshot())
	})
}

func pathID(r *http.Request) (int, error) {
	var id int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		return 0, fmt.Errorf("bad id %q", r.PathValue("id"))
	}
	return id, nil
}

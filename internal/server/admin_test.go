package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
)

func TestUpdateWorker(t *testing.T) {
	p := newTestPlatform(t)
	id, _ := p.RegisterWorker(geo.Pt(0.1, 0.1), 0.05, 0.2)
	if err := p.UpdateWorker(id, geo.Pt(0.8, 0.8), 0.1, -1); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	w := p.workers[id]
	p.mu.Unlock()
	if w.Loc != geo.Pt(0.8, 0.8) || w.Speed != 0.1 || w.Radius != 0.2 {
		t.Errorf("worker after update: %+v", w)
	}
	if err := p.UpdateWorker(99, geo.Pt(0, 0), 0.1, 0.1); err == nil {
		t.Error("unknown worker updated")
	}
}

func TestUnregisterAndCancel(t *testing.T) {
	p := newTestPlatform(t)
	id, _ := p.RegisterWorker(geo.Pt(0.1, 0.1), 0.05, 0.2)
	if err := p.UnregisterWorker(id); err != nil {
		t.Fatal(err)
	}
	if err := p.UnregisterWorker(id); err == nil {
		t.Error("double unregister succeeded")
	}
	tid, _ := p.PostTask(geo.Pt(0.5, 0.5), 2, 5)
	if err := p.CancelTask(tid); err != nil {
		t.Fatal(err)
	}
	if err := p.CancelTask(tid); err == nil {
		t.Error("double cancel succeeded")
	}
	if p.Status().OpenTasks != 0 || p.Status().AvailableWorkers != 0 {
		t.Error("state not cleaned")
	}
}

func TestBusyWorkerCannotLeave(t *testing.T) {
	p := newTestPlatform(t)
	for i := 0; i < 2; i++ {
		if _, err := p.RegisterWorker(geo.Pt(0.5, 0.5), 0.2, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	tid, _ := p.PostTask(geo.Pt(0.5, 0.5), 2, 5)
	if _, err := p.RunBatch(context.Background(), "TPG"); err != nil {
		t.Fatal(err)
	}
	if err := p.UnregisterWorker(0); err == nil {
		t.Error("busy worker unregistered")
	}
	if err := p.RateTask(tid, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := p.UnregisterWorker(0); err != nil {
		t.Errorf("freed worker cannot leave: %v", err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := newTestPlatform(t)
	for i := 0; i < 4; i++ {
		if _, err := p.RegisterWorker(geo.Pt(0.5+float64(i)*0.01, 0.5), 0.1, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	t1, _ := p.PostTask(geo.Pt(0.5, 0.5), 2, 5)
	if _, err := p.PostTask(geo.Pt(0.52, 0.5), 2, 6); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunBatch(context.Background(), "GT")
	if err != nil {
		t.Fatal(err)
	}
	if res.DispatchedTasks != 2 {
		t.Fatalf("dispatched %d", res.DispatchedTasks)
	}
	if err := p.RateTask(t1, 0.9); err != nil {
		t.Fatal(err)
	}
	// t1 is rated (workers back), the other dispatched task is pending.

	snap := p.Snapshot()
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := snap.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(loaded, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// State parity.
	a, b := p.Status(), restored.Status()
	if a.AvailableWorkers != b.AvailableWorkers || a.OpenTasks != b.OpenTasks ||
		a.Batches != b.Batches || a.DispatchedTasks != b.DispatchedTasks ||
		math.Abs(a.TotalScore-b.TotalScore) > 1e-12 {
		t.Fatalf("status mismatch:\n%+v\n%+v", a, b)
	}
	// History parity: rated pair's quality survives.
	pairW := []int{-1, -1}
	for _, pr := range res.Pairs {
		if pr.Task == t1 {
			if pairW[0] < 0 {
				pairW[0] = pr.Worker
			} else {
				pairW[1] = pr.Worker
			}
		}
	}
	q1, _ := p.Quality(pairW[0], pairW[1])
	q2, _ := restored.Quality(pairW[0], pairW[1])
	if math.Abs(q1-q2) > 1e-12 {
		t.Fatalf("history lost: %v vs %v", q1, q2)
	}
	// Pending dispatched group can still be rated after restore, releasing
	// its workers.
	var pendingTask int = -1
	for _, g := range snap.Dispatched {
		pendingTask = g.TaskID
	}
	if pendingTask < 0 {
		t.Fatal("no pending group snapshotted")
	}
	before := restored.Status().AvailableWorkers
	if err := restored.RateTask(pendingTask, 0.7); err != nil {
		t.Fatal(err)
	}
	if restored.Status().AvailableWorkers != before+2 {
		t.Error("restored pending group did not release workers on rating")
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	cases := map[string]*Snapshot{
		"bad B":        {B: 1},
		"worker range": {B: 2, NextWorkerID: 1, Workers: []SnapshotWorker{{ID: 5}}},
		"task range":   {B: 2, NextTaskID: 1, Tasks: []SnapshotTask{{ID: 5, Capacity: 2}}},
		"bad history":  {B: 2, History: []coop.PairRecord{{I: 0, K: 0, Count: 1}}},
	}
	for name, s := range cases {
		if _, err := Restore(s, Config{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadSnapshotGarbage(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := LoadSnapshotFile("/nonexistent/snap.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAdminHTTPEndpoints(t *testing.T) {
	p := newTestPlatform(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	code, out := httpJSON(t, srv, "POST", "/workers", WorkerRequest{X: 0.2, Y: 0.2, Speed: 0.1, Radius: 0.2})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, out)
	}
	if code, _ := httpJSON(t, srv, "PUT", "/workers/0", WorkerRequest{X: 0.7, Y: 0.7, Speed: -1, Radius: -1}); code != http.StatusOK {
		t.Fatalf("update: %d", code)
	}
	if code, _ := httpJSON(t, srv, "PUT", "/workers/abc", WorkerRequest{}); code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", code)
	}
	if code, _ := httpJSON(t, srv, "DELETE", "/workers/0", nil); code != http.StatusOK {
		t.Fatalf("unregister: %d", code)
	}
	if code, _ := httpJSON(t, srv, "DELETE", "/workers/0", nil); code != http.StatusNotFound {
		t.Fatalf("double unregister: %d", code)
	}
	code, _ = httpJSON(t, srv, "POST", "/tasks", TaskRequest{X: 0.5, Y: 0.5, Capacity: 2, Deadline: 5})
	if code != http.StatusCreated {
		t.Fatalf("post task: %d", code)
	}
	if code, _ := httpJSON(t, srv, "DELETE", "/tasks/0", nil); code != http.StatusOK {
		t.Fatalf("cancel: %d", code)
	}
	code, out = httpJSON(t, srv, "GET", "/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}
	if _, ok := out["history"]; !ok {
		t.Error("snapshot missing history field")
	}
}

func TestListEndpoints(t *testing.T) {
	p := newTestPlatform(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.RegisterWorker(geo.Pt(float64(i)*0.1, 0.5), 0.1, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.PostTask(geo.Pt(0.5, 0.5), 2, 5); err != nil {
		t.Fatal(err)
	}
	code, out := httpJSON(t, srv, "GET", "/workers", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /workers: %d", code)
	}
	var workers []SnapshotWorker
	if err := json.Unmarshal(out["workers"], &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 3 || workers[0].ID != 0 || workers[2].ID != 2 {
		t.Fatalf("workers: %+v", workers)
	}
	code, out = httpJSON(t, srv, "GET", "/tasks", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /tasks: %d", code)
	}
	var tasks []SnapshotTask
	if err := json.Unmarshal(out["tasks"], &tasks); err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Capacity != 2 {
		t.Fatalf("tasks: %+v", tasks)
	}
}

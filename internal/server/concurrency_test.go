package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"casc/internal/assign"
	"casc/internal/metrics"
)

// TestConcurrentPlatformHammer drives the whole HTTP surface from many
// goroutines at once and then checks conservation invariants: no worker or
// task is ever lost, every counter matches the successes the clients
// observed, and the gauges agree with the final Status. Run under -race
// this doubles as the platform's data-race audit.
func TestConcurrentPlatformHammer(t *testing.T) {
	p := newTestPlatform(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	const (
		registrars       = 4
		workersPerReg    = 25
		posters          = 4
		tasksPerPoster   = 15
		batchers         = 3
		batchesPerBatch  = 4
		readers          = 2
		readsPerReader   = 20
		farFutureDeadine = 1e9
	)
	var (
		wg         sync.WaitGroup
		registered atomic.Int64
		posted     atomic.Int64
		batches    atomic.Int64
		dispatched atomic.Int64
		pairs      atomic.Int64
		rated      atomic.Int64
	)

	for g := 0; g < registrars; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < workersPerReg; i++ {
				code, out := httpJSON(t, srv, "POST", "/workers", WorkerRequest{
					X: 0.3 + float64(g)*0.1, Y: 0.3 + float64(i)*0.01, Speed: 0.1, Radius: 0.4,
				})
				if code != http.StatusCreated {
					t.Errorf("register: status %d %v", code, out)
					return
				}
				registered.Add(1)
				var id int
				if err := json.Unmarshal(out["id"], &id); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				// Move the worker around; 409s are fine if a batch made it busy.
				httpJSON(t, srv, "PUT", fmt.Sprintf("/workers/%d", id), WorkerRequest{
					X: 0.5, Y: 0.5, Speed: -1, Radius: -1,
				})
			}
		}(g)
	}
	for g := 0; g < posters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < tasksPerPoster; i++ {
				code, out := httpJSON(t, srv, "POST", "/tasks", TaskRequest{
					X: 0.4 + float64(g)*0.05, Y: 0.4 + float64(i)*0.01,
					Capacity: 3, Deadline: farFutureDeadine,
				})
				if code != http.StatusCreated {
					t.Errorf("post task: status %d %v", code, out)
					return
				}
				posted.Add(1)
			}
		}(g)
	}
	for g := 0; g < batchers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batchesPerBatch; i++ {
				code, out := httpJSON(t, srv, "POST", "/batch", BatchRequest{Solver: "TPG"})
				if code != http.StatusOK {
					t.Errorf("batch: status %d %v", code, out)
					return
				}
				batches.Add(1)
				var ps []PairJSON
				if err := json.Unmarshal(out["pairs"], &ps); err != nil {
					t.Errorf("batch pairs: %v", err)
					return
				}
				pairs.Add(int64(len(ps)))
				seen := map[int]bool{}
				for _, pr := range ps {
					if seen[pr.Task] {
						continue
					}
					seen[pr.Task] = true
					dispatched.Add(1)
					// Each task is dispatched exactly once, and only its
					// dispatcher rates it, so every rating must succeed.
					rcode, rout := httpJSON(t, srv, "POST", "/ratings",
						RatingRequest{TaskID: pr.Task, Score: 0.8})
					if rcode != http.StatusOK {
						t.Errorf("rating task %d: status %d %v", pr.Task, rcode, rout)
						return
					}
					rated.Add(1)
				}
			}
		}()
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				for _, path := range []string{"/metrics", "/status", "/workers", "/tasks"} {
					resp, err := srv.Client().Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := p.Status()
	snap := p.Metrics().Snapshot()
	counter := func(name string) uint64 {
		t.Helper()
		v, ok := snap.Counter(name)
		if !ok {
			t.Fatalf("counter %s missing from snapshot", name)
		}
		return v
	}
	gauge := func(name string) float64 {
		t.Helper()
		v, ok := snap.Gauge(name)
		if !ok {
			t.Fatalf("gauge %s missing from snapshot", name)
		}
		return v
	}

	if got, want := counter(MetricWorkersRegistered), uint64(registered.Load()); got != want {
		t.Errorf("registered counter = %d, want %d", got, want)
	}
	if got, want := counter(MetricTasksPosted), uint64(posted.Load()); got != want {
		t.Errorf("posted counter = %d, want %d", got, want)
	}
	if got, want := counter(MetricBatches), uint64(batches.Load()); got != want {
		t.Errorf("batches counter = %d, want %d", got, want)
	}
	if st.Batches != int(batches.Load()) {
		t.Errorf("Status.Batches = %d, want %d", st.Batches, batches.Load())
	}
	if got, want := counter(MetricDispatchedTasks), uint64(dispatched.Load()); got != want {
		t.Errorf("dispatched counter = %d, want %d", got, want)
	}
	if st.DispatchedTasks != int(dispatched.Load()) {
		t.Errorf("Status.DispatchedTasks = %d, want %d", st.DispatchedTasks, dispatched.Load())
	}
	if got, want := counter(MetricDispatchedPairs), uint64(pairs.Load()); got != want {
		t.Errorf("pairs counter = %d, want %d", got, want)
	}
	if got, want := counter(MetricRatings), uint64(rated.Load()); got != want {
		t.Errorf("ratings counter = %d, want %d", got, want)
	}
	if got := counter(MetricExpiredTasks); got != 0 {
		t.Errorf("expired counter = %d, want 0 (deadlines were far future)", got)
	}

	// Conservation: every dispatched task was rated, so all workers are back
	// in the pool and no worker was ever lost.
	if rated.Load() != dispatched.Load() {
		t.Errorf("rated %d of %d dispatched tasks", rated.Load(), dispatched.Load())
	}
	if got, want := gauge(MetricBusyWorkers), 0.0; got != want {
		t.Errorf("busy gauge = %g, want %g", got, want)
	}
	if got, want := gauge(MetricAvailableWorkers), float64(registered.Load()); got != want {
		t.Errorf("available gauge = %g, want %g", got, want)
	}
	if st.AvailableWorkers != int(registered.Load()) {
		t.Errorf("Status.AvailableWorkers = %d, want %d", st.AvailableWorkers, registered.Load())
	}
	if got, want := gauge(MetricOpenTasks), float64(posted.Load()-dispatched.Load()); got != want {
		t.Errorf("open tasks gauge = %g, want %g", got, want)
	}
	if st.OpenTasks != int(posted.Load()-dispatched.Load()) {
		t.Errorf("Status.OpenTasks = %d, want %d", st.OpenTasks, posted.Load()-dispatched.Load())
	}
	if got, want := gauge(MetricTotalScore), st.TotalScore; got != want {
		t.Errorf("score gauge = %g, want Status.TotalScore %g", got, want)
	}

	// The HTTP layer counted every successful batch request on its route.
	if got, want := snapCounterHTTP(t, snap, "POST /batch", "200"), uint64(batches.Load()); got != want {
		t.Errorf("http counter for POST /batch 200 = %d, want %d", got, want)
	}
}

func snapCounterHTTP(t *testing.T, snap *metrics.Snapshot, route, code string) uint64 {
	t.Helper()
	v, ok := snap.Counter(MetricHTTPRequests, metrics.L("route", route), metrics.L("code", code))
	if !ok {
		t.Fatalf("http counter for %s %s missing", route, code)
	}
	return v
}

// TestMetricsEndpointAfterBatch is the acceptance check: after one real
// POST /batch round, GET /metrics serves Prometheus text with at least one
// populated counter, gauge, and histogram, and every sample line parses.
func TestMetricsEndpointAfterBatch(t *testing.T) {
	p := newTestPlatform(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		if code, out := httpJSON(t, srv, "POST", "/workers", WorkerRequest{
			X: 0.5 + float64(i)*0.01, Y: 0.5, Speed: 0.1, Radius: 0.2,
		}); code != http.StatusCreated {
			t.Fatalf("worker: status %d %v", code, out)
		}
	}
	if code, out := httpJSON(t, srv, "POST", "/tasks", TaskRequest{
		X: 0.5, Y: 0.5, Capacity: 3, Deadline: 5,
	}); code != http.StatusCreated {
		t.Fatalf("task: status %d %v", code, out)
	}
	if code, out := httpJSON(t, srv, "POST", "/batch", BatchRequest{Solver: "GT+ALL"}); code != http.StatusOK {
		t.Fatalf("batch: status %d %v", code, out)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// One populated representative of each metric kind.
	for _, want := range []string{
		"# TYPE " + MetricBatches + " counter",
		MetricBatches + " 1",
		"# TYPE " + MetricBusyWorkers + " gauge",
		MetricBusyWorkers + " 3",
		"# TYPE " + assign.MetricSolveSeconds + " histogram",
		assign.MetricSolveSeconds + `_count{solver="GT+ALL"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Every sample line must be "name[{labels}] value" with a numeric value
	// (label values may contain spaces, so split at the last one).
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.+\})?$`)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndex(line, " ")
		if cut < 0 {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		name, value := line[:cut], line[cut+1:]
		if !sample.MatchString(name) {
			t.Errorf("bad sample name in line %q", line)
		}
		if value != "+Inf" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("bad sample value in line %q: %v", line, err)
			}
		}
	}
}

package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"casc/internal/model"
)

// Recommendation is one ranked task suggestion for a worker: the expected
// cooperation utility ΔQ (Equation 5) of joining the task's *current*
// provisional group, computed against the platform's live quality
// estimates. This is the server-side support the worker-selected-tasks
// (WST) publishing mode of §VII needs: workers browse, the platform ranks.
type Recommendation struct {
	TaskID int     `json:"task_id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	// Utility is ΔQ of joining the task given the workers currently
	// nearest to it (a preview; the actual batch may group differently).
	Utility float64 `json:"utility"`
	// Distance from the worker.
	Distance float64 `json:"distance"`
}

// Recommend ranks the open tasks a worker can validly serve. The utility
// preview treats, for each candidate task, the other available candidate
// workers with the highest pairwise quality to this worker as the
// provisional group (size B−1) — the best group the worker could hope to
// join there.
func (p *Platform) Recommend(workerID int, limit int) ([]Recommendation, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	w, ok := p.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("server: worker %d not available (unknown or busy)", workerID)
	}
	if limit <= 0 {
		limit = 10
	}
	now := p.clock()
	var out []Recommendation
	for taskID, t := range p.tasks {
		if !model.Valid(w, t, now) {
			continue
		}
		// Provisional group: the B−1 best co-candidates for this task.
		var qs []float64
		for otherID, other := range p.workers {
			if otherID == workerID || !model.Valid(other, t, now) {
				continue
			}
			qs = append(qs, p.history.Quality(workerID, otherID))
		}
		if len(qs) < p.b-1 {
			continue // the worker could never complete this task
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(qs)))
		var sum float64
		for i := 0; i < p.b-1; i++ {
			sum += qs[i]
		}
		// ΔQ of completing a fresh B-group: the full group quality, of
		// which this worker's directed share is 2·Σq/(B−1) under symmetry.
		utility := 2 * sum / float64(p.b-1)
		out = append(out, Recommendation{
			TaskID:   taskID,
			X:        t.Loc.X,
			Y:        t.Loc.Y,
			Utility:  utility,
			Distance: w.Loc.Dist(t.Loc),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Utility != out[b].Utility {
			return out[a].Utility > out[b].Utility
		}
		return out[a].Distance < out[b].Distance
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// handleRecommend serves GET /recommend?worker=ID&limit=N.
func (p *Platform) handleRecommend(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("worker"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("recommend needs an integer worker param"))
		return
	}
	limit := 10
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil || limit < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
			return
		}
	}
	recs, err := p.Recommend(id, limit)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if recs == nil {
		recs = []Recommendation{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"recommendations": recs})
}

// Package casc is a complete implementation of Cooperation-Aware Task
// Assignment in Spatial Crowdsourcing (CA-SC) after Cheng, Chen and Ye,
// ICDE 2019: a spatial crowdsourcing platform periodically assigns moving
// workers to location-based tasks that each need a group of B..a_j workers,
// maximizing the total pairwise cooperation quality of the groups
// (Equations 1-3 of the paper).
//
// The package re-exports the full system through thin aliases:
//
//   - the problem model (Worker, Task, Instance, Assignment) with the
//     paper's validity, capacity and deadline constraints;
//   - the solvers: the task-priority greedy approach TPG (Algorithm 2), the
//     game theoretic approach GT (Algorithm 3) with the LUB and TSI
//     optimizations, the MFLOW and RAND baselines, the UPPER bound of
//     Equation 9, and an exact brute-force optimum for tiny instances;
//   - the batch-based framework of Algorithm 1 as a discrete-time simulator;
//   - workload generators: Table II synthetic workloads (UNIF/SKEW) and a
//     synthetic Meetup-style event social network standing in for the
//     paper's crawled dataset.
//
// Quick start:
//
//	params := casc.DefaultWorkload()
//	inst, err := params.Instance(0, casc.IndexRTree)
//	if err != nil { ... }
//	solver := casc.NewGT(casc.GTOptions{LUB: true, Epsilon: 0.05})
//	a, err := solver.Solve(ctx, inst)
//	fmt.Println(a.TotalScore(inst), "of at most", casc.Upper(inst))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every figure.
package casc

import (
	"context"
	"io"

	"casc/internal/assign"
	"casc/internal/batch"
	"casc/internal/checkin"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/harness"
	"casc/internal/meetup"
	"casc/internal/model"
	"casc/internal/online"
	"casc/internal/partition"
	"casc/internal/roadnet"
	"casc/internal/server"
	"casc/internal/trace"
	"casc/internal/viz"
	"casc/internal/workload"
)

// Core model types (§II of the paper).
type (
	// Point is a location in the 2D data space.
	Point = geo.Point
	// Worker is a cooperation-aware moving worker (Definition 1).
	Worker = model.Worker
	// Task is a spatial task (Definition 2).
	Task = model.Task
	// Instance is one batch of the CA-SC problem.
	Instance = model.Instance
	// Assignment is a set of valid worker-and-task pairs (Definition 4).
	Assignment = model.Assignment
	// Pair is one ⟨worker, task⟩ element of an assignment.
	Pair = model.Pair
	// IndexKind selects the spatial index used for candidate retrieval.
	IndexKind = model.IndexKind
	// QualityModel yields pairwise cooperation qualities q_i(w_k).
	QualityModel = model.QualityModel
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// NewAssignment returns an empty assignment for the instance.
func NewAssignment(in *Instance) *Assignment { return model.NewAssignment(in) }

// Unassigned marks a worker without a task in an Assignment.
const Unassigned = model.Unassigned

// Spatial index choices.
const (
	// IndexRTree uses an STR-bulk-loaded R-tree (the paper's choice).
	IndexRTree = model.IndexRTree
	// IndexGrid uses a uniform grid.
	IndexGrid = model.IndexGrid
	// IndexLinear scans all tasks per worker.
	IndexLinear = model.IndexLinear
)

// Solver types (§IV, §V).
type (
	// Solver computes an assignment for one batch instance.
	Solver = assign.Solver
	// GTOptions configure the game theoretic approach.
	GTOptions = assign.GTOptions
	// TPG is the task-priority greedy solver (Algorithm 2).
	TPG = assign.TPG
	// GT is the game theoretic solver (Algorithm 3).
	GT = assign.GT
)

// NewTPG returns the task-priority greedy solver (Algorithm 2).
func NewTPG() *TPG { return assign.NewTPG() }

// NewGT returns the game theoretic solver (Algorithm 3). Enable the §V-D
// optimizations with GTOptions{LUB: true} and/or GTOptions{Epsilon: 0.05}.
func NewGT(opts GTOptions) *GT { return assign.NewGT(opts) }

// NewMFlow returns the cooperation-oblivious maximum-flow baseline.
func NewMFlow() Solver { return assign.NewMFlow() }

// NewRandom returns the RAND baseline.
func NewRandom(seed int64) Solver { return assign.NewRandom(seed) }

// NewWST returns the worker-selected-tasks baseline (related work §VII).
func NewWST() Solver { return assign.NewWST() }

// NewExact returns the branch-and-bound optimal solver (small instances).
func NewExact() *assign.Exact { return assign.NewExact() }

// NewPortfolio runs several solvers and keeps the best assignment.
func NewPortfolio(names []string, seed int64) (*assign.Portfolio, error) {
	return assign.NewPortfolio(names, seed)
}

// Decomposition and component-parallel solving.
type (
	// ParallelOptions configures the decomposing decorator.
	ParallelOptions = assign.ParallelOptions
	// InstanceComponent is one connected component of an instance's
	// worker–task validity graph.
	InstanceComponent = partition.Component
	// SubIndex lifts sub-instance assignments back to the parent (see
	// Instance.SubInstance).
	SubIndex = model.SubIndex
)

// NewParallel wraps a solver so every instance is decomposed into the
// connected components of its validity graph and the components are solved
// concurrently on a bounded pool, with deterministic per-component seeds.
func NewParallel(inner Solver, opts ParallelOptions) *assign.Parallel {
	return assign.NewParallel(inner, opts)
}

// Components returns the independent connected components of the
// instance's validity graph, largest first.
func Components(in *Instance) []InstanceComponent { return partition.Components(in) }

// SolverByName resolves TPG, GT, GT+LUB, GT+TSI, GT+ALL, MFLOW, RAND or WST.
func SolverByName(name string, seed int64) (Solver, error) { return assign.ByName(name, seed) }

// AllSolverNames lists the solver names in the paper's figure order.
func AllSolverNames() []string { return assign.AllNames() }

// Upper computes the UPPER estimate of Equation 9 — an upper bound on the
// total cooperation quality revenue any assignment of the instance can
// achieve.
func Upper(in *Instance) float64 { return assign.Upper(in) }

// DefaultEpsilon is the paper's default TSI threshold (Table II).
const DefaultEpsilon = assign.DefaultEpsilon

// Cooperation quality models (Equation 1, §VI-A).
type (
	// QualityMatrix is a dense symmetric quality matrix for small instances.
	QualityMatrix = coop.Matrix
	// QualityHistory estimates qualities from co-operation records
	// (Equation 1).
	QualityHistory = coop.History
	// QualityJaccard is the Meetup co-group model of §VI-A.
	QualityJaccard = coop.Jaccard
	// QualitySynthetic is a deterministic O(1)-memory pseudo-random model.
	QualitySynthetic = coop.Synthetic
)

// NewQualityMatrix returns an all-zero n×n symmetric quality matrix.
func NewQualityMatrix(n int) *QualityMatrix { return coop.NewMatrix(n) }

// NewQualityHistory returns an Equation 1 estimator with mixing parameter
// alpha and base quality omega.
func NewQualityHistory(n int, alpha, omega float64) *QualityHistory {
	return coop.NewHistory(n, alpha, omega)
}

// NewQualityJaccard returns the Meetup co-group quality model over sorted
// per-worker group membership lists.
func NewQualityJaccard(groups [][]int) *QualityJaccard { return coop.NewJaccard(groups) }

// QualityDecayHistory is a recency-weighted Equation 1 estimator: ratings
// are weighted by exp(−λ·age), so estimates track current cooperation.
type QualityDecayHistory = coop.DecayHistory

// NewQualityDecayHistory returns a decayed estimator with rate lambda per
// time unit (lambda = 0 matches QualityHistory exactly).
func NewQualityDecayHistory(n int, alpha, omega, lambda float64) *QualityDecayHistory {
	return coop.NewDecayHistory(n, alpha, omega, lambda)
}

// NewQualityCache memoizes an expensive quality model per unordered pair;
// wrap Jaccard or History models before handing them to solvers.
func NewQualityCache(base QualityModel) QualityModel {
	return coop.NewCached(coopModelAdapter{base})
}

// coopModelAdapter bridges the structurally identical model.QualityModel
// and coop.Model interfaces.
type coopModelAdapter struct{ q QualityModel }

func (c coopModelAdapter) Quality(i, k int) float64 { return c.q.Quality(i, k) }
func (c coopModelAdapter) NumWorkers() int          { return c.q.NumWorkers() }

// Batch framework (Algorithm 1, §III).
type (
	// BatchConfig drives a simulation of the batch-based framework.
	BatchConfig = batch.Config
	// BatchSource feeds workers and tasks into the simulation.
	BatchSource = batch.Source
	// BatchResult aggregates a simulation.
	BatchResult = batch.Result
	// BatchStats records one batch.
	BatchStats = batch.BatchStats
	// GeneratorSource adapts per-round generator functions to BatchSource.
	GeneratorSource = batch.GeneratorSource
)

// Simulate runs the batch-based framework of Algorithm 1.
func Simulate(ctx context.Context, cfg BatchConfig, src BatchSource) (*BatchResult, error) {
	return batch.Run(ctx, cfg, src)
}

// Workloads (§VI-A).
type (
	// WorkloadParams are the Table II experiment knobs.
	WorkloadParams = workload.Params
	// WorkloadDist selects UNIF or SKEW locations.
	WorkloadDist = workload.Dist
	// MeetupConfig sizes the synthetic event-based social network.
	MeetupConfig = meetup.Config
	// MeetupCity is a generated event-based social network.
	MeetupCity = meetup.City
	// MeetupSampleParams configure one experiment round drawn from a city.
	MeetupSampleParams = meetup.SampleParams
)

// Location distributions.
const (
	// UNIF draws locations uniformly over the unit square.
	UNIF = workload.UNIF
	// SKEW draws 80% of locations from a central Gaussian cluster.
	SKEW = workload.SKEW
)

// DefaultWorkload returns Table II's bold default parameters.
func DefaultWorkload() WorkloadParams { return workload.Default() }

// DefaultMeetup mirrors the paper's Hong Kong Meetup slice.
func DefaultMeetup() MeetupConfig { return meetup.Default() }

// GenerateMeetup builds a synthetic Meetup-style city.
func GenerateMeetup(cfg MeetupConfig) *MeetupCity { return meetup.Generate(cfg) }

// DefaultMeetupSample returns Table II defaults for city sampling.
func DefaultMeetupSample() MeetupSampleParams { return meetup.DefaultSample() }

// Check-in trace workloads (Gowalla/Foursquare-style, §VI-A's other data
// sources).
type (
	// CheckinConfig sizes a synthetic check-in trace.
	CheckinConfig = checkin.Config
	// CheckinTrace is a generated LBSN check-in dataset.
	CheckinTrace = checkin.Trace
	// CheckinSampleParams configure one batch drawn from a trace.
	CheckinSampleParams = checkin.SampleParams
)

// DefaultCheckin is a city-scale check-in trace configuration.
func DefaultCheckin() CheckinConfig { return checkin.Default() }

// GenerateCheckin builds a synthetic check-in trace.
func GenerateCheckin(cfg CheckinConfig) *CheckinTrace { return checkin.Generate(cfg) }

// DefaultCheckinSample returns Table II defaults for trace sampling.
func DefaultCheckinSample() CheckinSampleParams { return checkin.DefaultSample() }

// Experiments (§VI).
type (
	// ExperimentOptions configure a figure regeneration.
	ExperimentOptions = harness.Options
	// ExperimentSeries is one regenerated figure.
	ExperimentSeries = harness.Series
)

// AllExperiments lists the experiment names in the paper's figure order:
// capacity (Fig. 2), speed (Fig. 3), radius (Fig. 4), deadline (Fig. 5),
// epsilon (Fig. 6), workers (Fig. 7), tasks (Fig. 8).
func AllExperiments() []string { return harness.AllExperiments() }

// RunExperiment regenerates one of the paper's figures.
func RunExperiment(ctx context.Context, name string, opt ExperimentOptions) (*ExperimentSeries, error) {
	return harness.Run(ctx, name, opt)
}

// Equilibrium analysis (Lemmas V.2/V.3, Theorem V.2).
type (
	// WorkerBounds carries q̂_{i,B} and q̌_{i,B} for one worker.
	WorkerBounds = assign.WorkerBounds
	// EquilibriumQuality reports the Theorem V.2 measures for a GT run.
	EquilibriumQuality = assign.EquilibriumQuality
)

// Bounds computes the Lemma V.2/V.3 per-worker quality bounds.
func Bounds(in *Instance) []WorkerBounds { return assign.Bounds(in) }

// AnalyzeEquilibrium evaluates an assignment against the Theorem V.2
// price-of-anarchy/stability bounds.
func AnalyzeEquilibrium(in *Instance, a *Assignment, nInit int) EquilibriumQuality {
	return assign.AnalyzeEquilibrium(in, a, nInit)
}

// RegretSummary aggregates a per-worker regret profile.
type RegretSummary = assign.RegretSummary

// Regret returns each worker's best unilateral utility gain under the
// assignment — the paper's fairness measure: a Nash equilibrium (GT
// output) has zero regret everywhere.
func Regret(in *Instance, a *Assignment) []float64 { return assign.Regret(in, a) }

// SummarizeRegret aggregates per-worker regrets.
func SummarizeRegret(regrets []float64) RegretSummary { return assign.SummarizeRegret(regrets) }

// Online assignment mode (§VII's one-by-one alternative to batching).
type (
	// OnlinePolicy decides one arriving worker's task immediately.
	OnlinePolicy = online.Policy
	// OnlineGreedy joins the task with the maximum immediate ΔQ.
	OnlineGreedy = online.GreedyDelta
	// OnlineThreshold joins only when ΔQ clears a threshold.
	OnlineThreshold = online.ThresholdDelta
	// OnlineRandom joins a random open valid task.
	OnlineRandom = online.RandomChoice
)

// RunOnline streams the instance's workers in arrival order through the
// policy, assigning each immediately and irrevocably.
func RunOnline(in *Instance, p OnlinePolicy) *Assignment { return online.Run(in, p) }

// Platform service (the HTTP crowdsourcing platform).
type (
	// Platform is the in-memory spatial crowdsourcing platform with the
	// Equation 1 rating feedback loop.
	Platform = server.Platform
	// PlatformConfig configures a Platform.
	PlatformConfig = server.Config
)

// NewPlatform returns an empty platform; its Handler method serves the
// HTTP API.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return server.NewPlatform(cfg) }

// NewLocalSearch wraps a base solver (nil: GT) with pairwise-swap
// refinement — the move class best-response dynamics cannot make.
func NewLocalSearch(base Solver) *assign.LocalSearch { return assign.NewLocalSearch(base) }

// Road-network travel model (extension; the paper is Euclidean).
type (
	// RoadNetwork is a road graph embedded in the unit square.
	RoadNetwork = roadnet.Network
	// RoadGridConfig configures a perturbed-grid street network.
	RoadGridConfig = roadnet.GridConfig
	// TravelFunc overrides the Euclidean travel-time model of an Instance.
	TravelFunc = model.TravelFunc
)

// NewRoadGrid builds a perturbed-grid road network; wire it into an
// Instance with inst.Travel = net.Travel(inst.Workers, inst.Tasks) before
// BuildCandidates.
func NewRoadGrid(cfg RoadGridConfig) (*RoadNetwork, error) { return roadnet.NewGrid(cfg) }

// DefaultRoadGrid is a 24×24 Manhattan-ish street grid.
func DefaultRoadGrid() RoadGridConfig { return roadnet.DefaultGrid() }

// Visualization.
type (
	// VizOptions control SVG rendering.
	VizOptions = viz.Options
)

// RenderAssignment writes a standalone SVG of the instance and assignment.
func RenderAssignment(w io.Writer, in *Instance, a *Assignment, opt VizOptions) error {
	return viz.Assignment(w, in, a, opt)
}

// SaveAssignmentSVG writes the rendering to a file.
func SaveAssignmentSVG(path string, in *Instance, a *Assignment, opt VizOptions) error {
	return viz.SaveAssignment(path, in, a, opt)
}

// Trace recording.
type (
	// TraceRecord is one batch of one recorded run.
	TraceRecord = trace.Record
	// TraceWriter appends records as JSON Lines.
	TraceWriter = trace.Writer
	// TraceSummary aggregates a recorded run.
	TraceSummary = trace.Summary
)

// NewTraceWriter wraps an io.Writer for JSONL trace recording; hand it to
// BatchConfig.Trace.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// ReadTrace loads trace records from JSON Lines.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return trace.Read(r) }

// SummarizeTrace aggregates records by run.
func SummarizeTrace(recs []TraceRecord) []TraceSummary { return trace.Summarize(recs) }

package casc_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// metricLit matches a casc_* metric-name string literal as it appears in a
// named constant declaration. Matching the quoted literal (rather than
// bare words) keeps prose and label values out of the inventory.
var metricLit = regexp.MustCompile(`"(casc_[a-z0-9_]+)"`)

// TestMetricsDocumented is the docs CI gate: every casc_* metric name
// registered anywhere in the source tree must be documented in
// docs/OPERATIONS.md, so the operator runbook can never silently fall
// behind the code. New metric? Add a row to the catalogue table.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading the operator runbook: %v", err)
	}
	runbook := string(doc)

	registered := map[string][]string{} // metric -> files declaring it
	err = filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and lint fixtures (fixture packages
			// declare deliberately bad metric names).
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricLit.FindAllStringSubmatch(string(src), -1) {
			registered[m[1]] = append(registered[m[1]], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(registered) == 0 {
		t.Fatal("no casc_* metric literals found; the scan is broken")
	}

	names := make([]string, 0, len(registered))
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(runbook, name) {
			t.Errorf("metric %s (declared in %s) is missing from docs/OPERATIONS.md",
				name, strings.Join(registered[name], ", "))
		}
	}
}

// flagMethods are the flag/FlagSet registration methods whose first
// argument is the flag name. The *Var forms take the name second.
var flagMethods = map[string]int{
	"Bool": 0, "Int": 0, "Int64": 0, "Uint": 0, "Uint64": 0,
	"String": 0, "Float64": 0, "Duration": 0,
	"BoolVar": 1, "IntVar": 1, "Int64Var": 1, "UintVar": 1, "Uint64Var": 1,
	"StringVar": 1, "Float64Var": 1, "DurationVar": 1,
}

// flagName matches a registered-looking flag name: the guard that keeps
// unrelated string-literal call arguments out of the inventory.
var flagName = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// docFlagTok matches a backticked `-flag ...` token in a runbook table
// row (trailing operand text like `-data f` is allowed and dropped).
var docFlagTok = regexp.MustCompile("`-([a-z][a-z0-9-]*)[^`]*`")

// registeredFlags parses every non-test .go file of one cmd/<name>
// directory and collects the flag names registered on the standard flag
// package or on any FlagSet (subcommands included).
func registeredFlags(t *testing.T, dir string) map[string]bool {
	t.Helper()
	flags := map[string]bool{}
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := flagMethods[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			lit, ok := call.Args[argIdx].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name := strings.Trim(lit.Value, `"`)
			if flagName.MatchString(name) {
				flags[name] = true
			}
			return true
		})
	}
	return flags
}

// commandSection cuts the `### casc-<cmd>` section out of the runbook:
// from its heading to the next ### or ## heading.
func commandSection(runbook, cmd string) (string, error) {
	marker := "### " + cmd
	i := strings.Index(runbook, marker)
	if i < 0 {
		return "", fmt.Errorf("no %q section", marker)
	}
	rest := runbook[i+len(marker):]
	end := len(rest)
	for _, next := range []string{"\n### ", "\n## "} {
		if j := strings.Index(rest, next); j >= 0 && j < end {
			end = j
		}
	}
	return rest[:end], nil
}

// TestFlagsDocumented is the second docs CI gate, the flag-catalogue
// twin of TestMetricsDocumented: every flag registered by a cmd/ binary
// (FlagSet subcommands included) must have a backticked `-flag` row in
// that binary's section of docs/OPERATIONS.md, and every flag token
// documented in those tables must still exist in the code — so the
// runbook can neither fall behind a new flag nor keep advertising a
// removed one.
func TestFlagsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading the operator runbook: %v", err)
	}
	runbook := string(doc)

	cmds, err := filepath.Glob(filepath.Join("cmd", "casc-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) == 0 {
		t.Fatal("no cmd/casc-* directories found; the scan is broken")
	}
	for _, dir := range cmds {
		cmd := filepath.Base(dir)
		flags := registeredFlags(t, dir)
		if len(flags) == 0 {
			t.Errorf("%s: no flag registrations found; the scan is broken", cmd)
			continue
		}
		section, err := commandSection(runbook, cmd)
		if err != nil {
			t.Errorf("%s: %v", cmd, err)
			continue
		}
		// Documented inventory: `-flag` tokens in the section's table
		// rows. Prose mentions outside table rows don't count as
		// documentation, so a row can't be replaced by a passing
		// reference.
		documented := map[string]bool{}
		for _, line := range strings.Split(section, "\n") {
			if !strings.HasPrefix(strings.TrimSpace(line), "|") {
				continue
			}
			for _, m := range docFlagTok.FindAllStringSubmatch(line, -1) {
				documented[m[1]] = true
			}
		}
		names := make([]string, 0, len(flags))
		for name := range flags {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !documented[name] {
				t.Errorf("%s: flag -%s is missing from its docs/OPERATIONS.md table", cmd, name)
			}
		}
		stale := make([]string, 0, len(documented))
		for name := range documented {
			stale = append(stale, name)
		}
		sort.Strings(stale)
		for _, name := range stale {
			if !flags[name] {
				t.Errorf("%s: docs/OPERATIONS.md documents -%s but the binary does not register it", cmd, name)
			}
		}
	}
}

package casc_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// metricLit matches a casc_* metric-name string literal as it appears in a
// named constant declaration. Matching the quoted literal (rather than
// bare words) keeps prose and label values out of the inventory.
var metricLit = regexp.MustCompile(`"(casc_[a-z0-9_]+)"`)

// TestMetricsDocumented is the docs CI gate: every casc_* metric name
// registered anywhere in the source tree must be documented in
// docs/OPERATIONS.md, so the operator runbook can never silently fall
// behind the code. New metric? Add a row to the catalogue table.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading the operator runbook: %v", err)
	}
	runbook := string(doc)

	registered := map[string][]string{} // metric -> files declaring it
	err = filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and lint fixtures (fixture packages
			// declare deliberately bad metric names).
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricLit.FindAllStringSubmatch(string(src), -1) {
			registered[m[1]] = append(registered[m[1]], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(registered) == 0 {
		t.Fatal("no casc_* metric literals found; the scan is broken")
	}

	names := make([]string, 0, len(registered))
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(runbook, name) {
			t.Errorf("metric %s (declared in %s) is missing from docs/OPERATIONS.md",
				name, strings.Join(registered[name], ", "))
		}
	}
}

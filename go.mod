module casc

go 1.22

// Benchmarks regenerating every figure of the paper's evaluation (§VI) plus
// the ablation benches called out in DESIGN.md §4. Each figure bench runs
// its full parameter sweep once per iteration at a reduced scale (the
// paper-scale runs are the casc-bench CLI's job; these keep `go test
// -bench=.` in CI territory). Shapes — who wins, by roughly what factor —
// are asserted in the test suite; the benches report the costs.
package casc

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"casc/internal/assign"
	"casc/internal/harness"
)

// benchScale keeps one full figure sweep around a second.
const benchScale = 0.12

func benchFigure(b *testing.B, name string) {
	b.Helper()
	ctx := context.Background()
	opt := harness.Options{Rounds: 1, Seed: 1, Scale: benchScale}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := harness.Run(ctx, name, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Points) == 0 {
			b.Fatal("no sweep points")
		}
	}
}

// BenchmarkFig2Capacity regenerates Figure 2 (effect of capacity a_j).
func BenchmarkFig2Capacity(b *testing.B) { benchFigure(b, harness.ExpCapacity) }

// BenchmarkFig3Speed regenerates Figure 3 (effect of worker speeds).
func BenchmarkFig3Speed(b *testing.B) { benchFigure(b, harness.ExpSpeed) }

// BenchmarkFig4Radius regenerates Figure 4 (effect of working areas).
func BenchmarkFig4Radius(b *testing.B) { benchFigure(b, harness.ExpRadius) }

// BenchmarkFig5Deadline regenerates Figure 5 (effect of remaining time τ_j).
func BenchmarkFig5Deadline(b *testing.B) { benchFigure(b, harness.ExpDeadline) }

// BenchmarkFig6Epsilon regenerates Figure 6 (effect of the TSI threshold ε).
func BenchmarkFig6Epsilon(b *testing.B) { benchFigure(b, harness.ExpEpsilon) }

// BenchmarkFig7Workers regenerates Figure 7 (scalability in m).
func BenchmarkFig7Workers(b *testing.B) { benchFigure(b, harness.ExpWorkers) }

// BenchmarkFig8Tasks regenerates Figure 8 (scalability in n).
func BenchmarkFig8Tasks(b *testing.B) { benchFigure(b, harness.ExpTasks) }

// benchInstance is one solver-bench batch: 300 workers, 120 tasks at
// otherwise Table II defaults.
func benchInstance(b *testing.B, kind IndexKind) *Instance {
	b.Helper()
	p := DefaultWorkload()
	p.NumWorkers, p.NumTasks = 300, 120
	in, err := p.Instance(0, kind)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkSolver times one batch assignment per approach.
func BenchmarkSolver(b *testing.B) {
	in := benchInstance(b, IndexRTree)
	ctx := context.Background()
	for _, name := range AllSolverNames() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := SolverByName(name, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpper times the Equation 9 bound.
func BenchmarkUpper(b *testing.B) {
	in := benchInstance(b, IndexRTree)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Upper(in)
	}
}

// BenchmarkAblationSpatialIndex compares candidate construction across the
// three spatial indexes (DESIGN.md §4.6).
func BenchmarkAblationSpatialIndex(b *testing.B) {
	p := DefaultWorkload()
	p.NumWorkers, p.NumTasks = 1000, 500
	base, err := p.Instance(0, IndexLinear)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []IndexKind{IndexRTree, IndexGrid, IndexLinear} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in := *base
				in.BuildCandidates(kind)
			}
		})
	}
}

// BenchmarkAblationQualityModel compares GT's cost under the dense-matrix,
// hash-synthetic and Jaccard quality models (DESIGN.md §4.1).
func BenchmarkAblationQualityModel(b *testing.B) {
	p := DefaultWorkload()
	p.NumWorkers, p.NumTasks = 300, 120
	base, err := p.Instance(0, IndexRTree)
	if err != nil {
		b.Fatal(err)
	}
	n := len(base.Workers)

	matrix := NewQualityMatrix(n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			matrix.Set(i, k, base.Quality.Quality(i, k))
		}
	}
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i % 40, 40 + i%25, 65 + i%11}
		// Jaccard needs sorted unique lists; the construction above is both.
	}
	models := []struct {
		name string
		q    QualityModel
	}{
		{"synthetic", base.Quality},
		{"matrix", matrix},
		{"jaccard", NewQualityJaccard(groups)},
	}
	ctx := context.Background()
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			in := *base
			in.Quality = m.q
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewGT(GTOptions{}).Solve(ctx, &in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSeeding compares TPG's exhaustive pair seeding against
// the truncated-affinity fallback (DESIGN.md §4.2).
func BenchmarkAblationSeeding(b *testing.B) {
	p := DefaultWorkload()
	p.NumWorkers, p.NumTasks = 800, 100
	p.RadiusRange = [2]float64{0.15, 0.20} // dense candidate pools
	in, err := p.Instance(0, IndexRTree)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, limit := range []int{16, 64, assign.DefaultSeedLimit} {
		b.Run(fmt.Sprintf("seedLimit=%d", limit), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := &assign.TPG{SeedLimit: limit}
				if _, err := s.Solve(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGTInit compares GT initialized from TPG (Algorithm 3
// line 1) against a cold random start (DESIGN.md §4; the paper's complexity
// analysis mentions the random variant).
func BenchmarkAblationGTInit(b *testing.B) {
	in := benchInstance(b, IndexRTree)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts GTOptions
	}{
		{"tpg-init", GTOptions{}},
		{"random-init", GTOptions{RandomInit: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewGT(tc.opts).Solve(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLUBTSI isolates the two GT optimizations of §V-D.
func BenchmarkAblationLUBTSI(b *testing.B) {
	in := benchInstance(b, IndexRTree)
	ctx := context.Background()
	for _, name := range []string{"GT", "GT+LUB", "GT+TSI", "GT+ALL"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := SolverByName(name, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchSimulation times the Algorithm 1 simulator end to end.
func BenchmarkBatchSimulation(b *testing.B) {
	p := DefaultWorkload()
	p.NumWorkers, p.NumTasks = 100, 30
	src := &GeneratorSource{
		Model:     QualitySynthetic{N: 100 * 6, Seed: 3},
		WorkersFn: func(round int) []Worker { return p.WithSeed(int64(round)).Workers(float64(round)) },
		TasksFn:   func(round int) []Task { return p.WithSeed(int64(round) + 77).Tasks(float64(round)) },
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(context.Background(), BatchConfig{Solver: NewTPG(), Rounds: 5, B: 3}, src); err != nil {
			b.Fatal(err)
		}
	}
}

// The model package's quality arithmetic is on the hot path of every
// solver; keep its costs visible.
func BenchmarkGroupQuality(b *testing.B) {
	in := benchInstance(b, IndexLinear)
	g := in.NewGroupScore(5)
	for _, w := range []int{1, 2, 3, 4} {
		g.Join(w)
	}
	b.Run("JoinDelta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.JoinDelta(10)
		}
	})
	b.Run("GroupQuality5", func(b *testing.B) {
		ws := []int{1, 2, 3, 4, 10}
		for i := 0; i < b.N; i++ {
			in.GroupQuality(ws, 5)
		}
	})
}

// BenchmarkAblationGainPriority compares index-order best-response
// scheduling against gain-priority scheduling (engine-level ablation; both
// converge to equilibria of equal quality, see the game package tests).
func BenchmarkAblationGainPriority(b *testing.B) {
	in := benchInstance(b, IndexRTree)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts GTOptions
	}{
		{"index-order", GTOptions{RandomInit: true}},
		{"gain-priority", GTOptions{RandomInit: true, GainPriority: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewGT(tc.opts).Solve(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// clusteredBenchInstance builds a batch whose validity graph splits into
// `clusters` independent components (workers and tasks confined to spatial
// clusters 0.25 apart with working areas ≤ 0.1) — the decomposition-
// friendly shape hyperlocal platforms actually see.
func clusteredBenchInstance(b *testing.B, clusters, wPer, tPer int) *Instance {
	b.Helper()
	r := rand.New(rand.NewSource(61))
	cols := 1
	for cols*cols < clusters {
		cols++
	}
	in := &Instance{
		Quality: QualitySynthetic{N: clusters * wPer, Seed: 61},
		B:       3,
	}
	jitter := func(c int) Point {
		cx := 0.125 + 0.25*float64(c%cols)
		cy := 0.125 + 0.25*float64(c/cols)
		return Pt(cx+(r.Float64()-0.5)*0.08, cy+(r.Float64()-0.5)*0.08)
	}
	for i := 0; i < clusters*wPer; i++ {
		in.Workers = append(in.Workers, Worker{
			ID: i, Loc: jitter(i % clusters),
			Speed: 0.05 + r.Float64()*0.05, Radius: 0.09 + r.Float64()*0.01,
		})
	}
	for j := 0; j < clusters*tPer; j++ {
		in.Tasks = append(in.Tasks, Task{
			ID: j, Loc: jitter(j % clusters),
			Capacity: 3 + r.Intn(2), Deadline: 5 + r.Float64()*5,
		})
	}
	in.BuildCandidates(IndexRTree)
	return in
}

// BenchmarkParallelVsMonolithic compares one GT batch solved monolithically
// against the same batch decomposed into its connected components and
// solved on a GOMAXPROCS-bounded pool. The decomposition pays a fixed toll
// (sub-instance construction, re-indexed quality lookups, the merge), so on
// a single core the monolithic run stays ahead; with GOMAXPROCS ≥ 4 the
// nine components run concurrently and the decomposed run is ≥ 2x faster
// wall-clock.
func BenchmarkParallelVsMonolithic(b *testing.B) {
	in := clusteredBenchInstance(b, 9, 36, 14)
	ctx := context.Background()
	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewGT(GTOptions{LUB: true}).Solve(ctx, in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := NewParallel(NewGT(GTOptions{LUB: true}), ParallelOptions{})
			if _, err := p.Solve(ctx, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

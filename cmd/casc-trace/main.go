// casc-trace analyzes recorded batch traces (JSON Lines produced by the
// batch simulator's Trace option or by casc-sim -trace): per-run summaries,
// round-by-round score series, and worker-load fairness. The replay
// subcommand re-runs a recorded scenario event stream and verifies the
// fresh decision trace is bitwise identical to the original.
//
// Usage:
//
//	casc-trace -in run.jsonl
//	casc-trace -in run.jsonl -load     # per-worker dispatch counts
//	casc-trace replay -events ev.jsonl -expect run.jsonl [-incremental] [-shards K]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"sort"
	"strings"

	"casc/internal/scenario"
	"casc/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		replayMain(os.Args[2:])
		return
	}
	var (
		in   = flag.String("in", "", "trace file (JSON Lines)")
		load = flag.Bool("load", false, "print the per-worker dispatch distribution")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "casc-trace: -in required")
		os.Exit(2)
	}
	recs, err := trace.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	if err := trace.Validate(recs); err != nil {
		fatal(fmt.Errorf("trace fails validation: %w", err))
	}
	fmt.Printf("%d records\n\n", len(recs))
	fmt.Printf("%-16s %-8s %7s %12s %10s %8s %10s\n",
		"run", "solver", "rounds", "total score", "of UPPER", "pairs", "avg batch")
	for _, s := range trace.Summarize(recs) {
		fmt.Printf("%-16s %-8s %7d %12.2f %9.1f%% %8d %8.2fms\n",
			s.Run, s.Solver, s.Rounds, s.TotalScore, s.Ratio()*100,
			s.DispatchedPairs, s.MeanElapsedMS)
	}
	if *load {
		dist := trace.WorkerLoad(recs)
		type wl struct{ worker, count int }
		var list []wl
		for w, c := range dist {
			list = append(list, wl{w, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].count != list[j].count {
				return list[i].count > list[j].count
			}
			return list[i].worker < list[j].worker
		})
		fmt.Printf("\nworker load (%d workers ever dispatched)\n", len(list))
		max := 20
		if len(list) < max {
			max = len(list)
		}
		for _, e := range list[:max] {
			fmt.Printf("worker %6d: %d dispatches\n", e.worker, e.count)
		}
		if len(list) > max {
			fmt.Printf("... %d more\n", len(list)-max)
		}
	}
}

// replayMain is the replay subcommand: rebuild the plan from a recorded
// event stream, re-run it, and diff the fresh decision trace against the
// expected one — bitwise scores (Float64bits) and identical pair sets.
// Exits 1 on divergence, so CI can gate on replayability.
func replayMain(args []string) {
	fs := flag.NewFlagSet("casc-trace replay", flag.ExitOnError)
	var (
		events = fs.String("events", "", "recorded arrival event stream (casc-sim -record)")
		expect = fs.String("expect", "", "expected decision trace to compare against (casc-sim -trace); empty: just re-run and summarize")
		solver = fs.String("solver", "", "dispatch with this solver instead of the recorded one")
		incr   = fs.Bool("incremental", false, "replay through the persistent incremental engine")
		shards = fs.Int("shards", 0, "replay through a sharded cluster of this size (0: monolithic)")
		cfK    = fs.Int("counterfactual-k", 0, "re-solve this many alternates per round, matching the original run's setting (-1: all); required to reproduce cf: records")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *events == "" {
		fmt.Fprintln(os.Stderr, "casc-trace replay: -events required")
		os.Exit(2)
	}
	meta, evs, err := trace.ReadEventsFile(*events)
	if err != nil {
		fatal(err)
	}
	plan, err := scenario.FromEvents(meta, evs)
	if err != nil {
		fatal(err)
	}
	tmp, err := os.CreateTemp("", "casc-replay-*.jsonl")
	if err != nil {
		fatal(err)
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	defer tmp.Close()
	tw := trace.NewWriter(tmp)
	rep, err := scenario.Run(context.Background(), scenario.RunConfig{
		Plan:            plan,
		Solver:          *solver,
		CounterfactualK: *cfK,
		Incremental:     *incr,
		Shards:          *shards,
		Trace:           tw,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed scenario %q: %d rounds, solver %s, score %.2f, dispatched %d\n",
		meta.Scenario, plan.Rounds(), rep.Solver, rep.Score, rep.Dispatched)
	if *expect == "" {
		return
	}
	if _, err := tmp.Seek(0, 0); err != nil {
		fatal(err)
	}
	got, err := trace.Read(tmp)
	if err != nil {
		fatal(err)
	}
	want, err := trace.ReadFile(*expect)
	if err != nil {
		fatal(err)
	}
	if err := diffDecisions(want, got); err != nil {
		fmt.Fprintf(os.Stderr, "casc-trace replay: DIVERGED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replay matches %s bitwise: %d records, scores and pair sets identical\n",
		*expect, len(got))
}

// diffDecisions compares two decision traces record by record. Chosen and
// counterfactual records both participate; elapsed times are ignored (wall
// clock), scores compare bitwise.
func diffDecisions(want, got []trace.Record) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d records, expected %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Run != g.Run || w.Round != g.Round || w.Solver != g.Solver {
			return fmt.Errorf("record %d identity (%s,%d,%s) != expected (%s,%d,%s)",
				i, g.Run, g.Round, g.Solver, w.Run, w.Round, w.Solver)
		}
		if math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			return fmt.Errorf("record %d (%s round %d) score %v != expected %v",
				i, w.Run, w.Round, g.Score, w.Score)
		}
		if !reflect.DeepEqual(w.Pairs, g.Pairs) {
			return fmt.Errorf("record %d (%s round %d) dispatched pairs differ", i, w.Run, w.Round)
		}
	}
	// Belt and braces: the runs present must match, too.
	runs := func(recs []trace.Record) string {
		seen := map[string]bool{}
		var names []string
		for _, r := range recs {
			if !seen[r.Run] {
				seen[r.Run] = true
				names = append(names, r.Run)
			}
		}
		sort.Strings(names)
		return strings.Join(names, ",")
	}
	if a, b := runs(want), runs(got); a != b {
		return fmt.Errorf("runs %q != expected %q", b, a)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "casc-trace: %v\n", err)
	os.Exit(1)
}

// casc-trace analyzes recorded batch traces (JSON Lines produced by the
// batch simulator's Trace option or by casc-sim -trace): per-run summaries,
// round-by-round score series, and worker-load fairness.
//
// Usage:
//
//	casc-trace -in run.jsonl
//	casc-trace -in run.jsonl -load     # per-worker dispatch counts
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"casc/internal/trace"
)

func main() {
	var (
		in   = flag.String("in", "", "trace file (JSON Lines)")
		load = flag.Bool("load", false, "print the per-worker dispatch distribution")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "casc-trace: -in required")
		os.Exit(2)
	}
	recs, err := trace.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	if err := trace.Validate(recs); err != nil {
		fatal(fmt.Errorf("trace fails validation: %w", err))
	}
	fmt.Printf("%d records\n\n", len(recs))
	fmt.Printf("%-16s %-8s %7s %12s %10s %8s %10s\n",
		"run", "solver", "rounds", "total score", "of UPPER", "pairs", "avg batch")
	for _, s := range trace.Summarize(recs) {
		fmt.Printf("%-16s %-8s %7d %12.2f %9.1f%% %8d %8.2fms\n",
			s.Run, s.Solver, s.Rounds, s.TotalScore, s.Ratio()*100,
			s.DispatchedPairs, s.MeanElapsedMS)
	}
	if *load {
		dist := trace.WorkerLoad(recs)
		type wl struct{ worker, count int }
		var list []wl
		for w, c := range dist {
			list = append(list, wl{w, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].count != list[j].count {
				return list[i].count > list[j].count
			}
			return list[i].worker < list[j].worker
		})
		fmt.Printf("\nworker load (%d workers ever dispatched)\n", len(list))
		max := 20
		if len(list) < max {
			max = len(list)
		}
		for _, e := range list[:max] {
			fmt.Printf("worker %6d: %d dispatches\n", e.worker, e.count)
		}
		if len(list) > max {
			fmt.Printf("... %d more\n", len(list)-max)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "casc-trace: %v\n", err)
	os.Exit(1)
}

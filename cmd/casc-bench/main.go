// casc-bench regenerates the figures of the paper's experimental study
// (§VI). Each experiment sweeps one Table II parameter over R rounds and
// prints the two panels the paper plots — total cooperation score and batch
// running time — for TPG, GT, GT+LUB, GT+TSI, GT+ALL, MFLOW, RAND and the
// UPPER estimate.
//
// Usage:
//
//	casc-bench -exp capacity            # Figure 2 at paper scale
//	casc-bench -exp all -scale 0.2      # all figures, 20% scale
//	casc-bench -exp settings            # print the Table II grid
//	casc-bench -exp workers -csv        # CSV instead of aligned tables
//	casc-bench -exp workers -json       # also write BENCH_workers.json
//	casc-bench -exp all -metrics m.json # dump final metrics snapshot
//	casc-bench -exp workers -parallel   # decomposed component-parallel solves
//	casc-bench -exp all -cpuprofile cpu.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"time"

	"casc/internal/harness"
	"casc/internal/metrics"
	"casc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "casc-bench: %v\n", err)
		os.Exit(1)
	}
}

// run carries the whole program so deferred cleanup (the CPU profile stop
// in particular) survives error exits.
func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: capacity|speed|radius|deadline|epsilon|workers|tasks|distribution|optgap|anytime|sources|paperscale|shards|incremental|scenario|all|extra|settings")
		rounds   = flag.Int("rounds", workload.DefaultRounds, "rounds R per sweep point")
		scale    = flag.Float64("scale", 1.0, "scale factor on m and n (1.0 = paper scale)")
		seed     = flag.Int64("seed", 1, "random seed")
		solvers  = flag.String("solvers", "", "comma-separated solver subset (default: all)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart    = flag.Bool("chart", false, "also render an ASCII chart per figure")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
		bjson    = flag.Bool("json", false, "write BENCH_<experiment>.json per experiment (solver, n, mean/p50/p95 latency, score)")
		jsonDir  = flag.String("json-dir", ".", "directory for BENCH_*.json files")
		diffDir  = flag.String("diff", "", "diff this run against the committed BENCH_<experiment>.json baselines in this directory (exact scores, bounded latency); non-zero exit on regression")
		metricsF = flag.String("metrics", "", "write the final metrics snapshot as JSON to this file")
		parallel = flag.Bool("parallel", false, "decompose each batch into connected components and solve them concurrently")
		workers  = flag.Int("workers", 0, "component worker pool under -parallel (0: GOMAXPROCS)")
		budget   = flag.Duration("budget", 0, "per-solve budget; overruns fall through the anytime ladder (solver → TPG → RAND → empty floor)")
		incr     = flag.Bool("incremental", false, "engine-only timing for -exp incremental: skip the from-scratch baseline and its bitwise comparison")
		arena    = flag.Bool("arena", false, "give each arena-capable solver a persistent scratch arena per sweep point (steady-state allocation-free solves; never changes scores)")
		benchmem = flag.Bool("benchmem", false, "record steady-state heap allocs per solve into the bench output and JSON (gated by -diff when the baseline has them)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	)
	flag.Parse()

	if *exp == "settings" {
		printSettings()
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	opt := harness.Options{
		Rounds: *rounds, Seed: *seed, Scale: *scale,
		Parallel: *parallel, Workers: *workers, Budget: *budget,
		Incremental: *incr, Arena: *arena, Benchmem: *benchmem,
	}
	if *solvers != "" {
		opt.Solvers = strings.Split(*solvers, ",")
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	reg := metrics.NewRegistry()
	if *metricsF != "" {
		opt.Metrics = reg
	}

	names := []string{*exp}
	switch *exp {
	case "all":
		names = harness.AllExperiments()
	case "extra":
		names = harness.ExtraExperiments()
	}
	for _, name := range names {
		start := time.Now()
		s, err := harness.Run(ctx, name, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *csv {
			if err := s.CSV(os.Stdout); err != nil {
				return err
			}
		} else {
			if err := s.Render(os.Stdout); err != nil {
				return err
			}
			if *chart {
				if err := s.Chart(os.Stdout); err != nil {
					return err
				}
			}
		}
		if *bjson {
			path, err := s.BenchFile(opt).SaveBench(*jsonDir)
			if err != nil {
				return err
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
		if *diffDir != "" {
			base, err := harness.LoadBench(*diffDir, name)
			if err != nil {
				return err
			}
			if err := s.BenchFile(opt).DiffAgainst(base); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "%s matches baseline %s/BENCH_%s.json\n", name, *diffDir, name)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s finished in %s\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *metricsF != "" {
		if err := saveMetrics(*metricsF, reg); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsF)
		}
	}
	return nil
}

// saveMetrics dumps the registry snapshot as indented JSON.
func saveMetrics(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		return err
	}
	return f.Close()
}

func printSettings() {
	fmt.Println("Table II — experimental settings (defaults in brackets)")
	fmt.Printf("%-38s %v\n", "capacity a_j of tasks:", workload.CapacityValues)
	fmt.Printf("%-38s %v (default [1,5])\n", "range [v-,v+] of worker speeds (%):", fmtRanges(workload.SpeedRanges))
	fmt.Printf("%-38s %v (default [5,10])\n", "range [r-,r+] of working areas (%):", fmtRanges(workload.RadiusRanges))
	fmt.Printf("%-38s %v (default 3)\n", "remaining time τ_j of tasks:", workload.RemainingTimes)
	fmt.Printf("%-38s %v (default 0.05)\n", "threshold parameter ε:", workload.EpsilonValues)
	fmt.Printf("%-38s %v (default 1000)\n", "number m of workers per round:", workload.WorkerCounts)
	fmt.Printf("%-38s %v (default 500)\n", "number n of tasks per round:", workload.TaskCounts)
	fmt.Printf("%-38s %d\n", "number R of total rounds:", workload.DefaultRounds)
	fmt.Printf("%-38s %d\n", "least required workers B:", workload.Default().B)
	fmt.Printf("%-38s a_j = %d\n", "default capacity:", workload.Default().Capacity)
}

func fmtRanges(rs [][2]float64) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("[%g,%g]", r[0]*100, r[1]*100)
	}
	return out
}

// casc-sim runs CA-SC assignments — either one batch loaded from a
// casc-gen JSON file or generated on the fly, or a multi-round Algorithm 1
// simulation — through a chosen solver and reports assignment quality
// against the UPPER estimate, optionally comparing every approach.
//
// Usage:
//
//	casc-sim -data batch.json -solver GT+ALL
//	casc-sim -m 500 -n 200 -solver GT          # generate one batch
//	casc-sim -data batch.json -compare         # all solvers side by side
//	casc-sim -rounds 10 -m 300 -n 100 -compare # Algorithm 1 simulation
//	casc-sim -rounds 10 -metrics m.json        # dump final metrics snapshot
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"casc/internal/assign"
	"casc/internal/batch"
	"casc/internal/coop"
	"casc/internal/dataset"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/resilience"
	"casc/internal/roadnet"
	"casc/internal/scenario"
	"casc/internal/shard"
	"casc/internal/trace"
	"casc/internal/viz"
	"casc/internal/workload"
)

func main() {
	var (
		data     = flag.String("data", "", "dataset JSON from casc-gen (empty: generate)")
		solver   = flag.String("solver", "GT", "solver: TPG|GT|GT+LUB|GT+TSI|GT+ALL|MFLOW|RAND|WST")
		compare  = flag.Bool("compare", false, "run every solver and print a comparison")
		m        = flag.Int("m", 1000, "workers when generating (per round with -rounds)")
		n        = flag.Int("n", 500, "tasks when generating (per round with -rounds)")
		seed     = flag.Int64("seed", 1, "seed when generating")
		index    = flag.String("index", "rtree", "spatial index: rtree|grid|linear")
		rounds   = flag.Int("rounds", 1, "batch rounds; >1 runs the Algorithm 1 simulator over generated arrivals")
		svg      = flag.String("svg", "", "write an SVG rendering of the (last) solver's assignment to this file")
		road     = flag.Bool("road", false, "use a road-network travel model instead of Euclidean")
		traceF   = flag.String("trace", "", "with -rounds: record per-batch JSONL trace to this file")
		metricsF = flag.String("metrics", "", "write the final metrics snapshot as JSON to this file")
		parallel = flag.Bool("parallel", false, "decompose each batch into connected components and solve them concurrently")
		workers  = flag.Int("workers", 0, "component worker pool under -parallel (0: GOMAXPROCS)")
		budget   = flag.Duration("budget", 0, "per-round solve budget; overruns fall through the anytime ladder (solver → TPG → RAND → empty floor)")
		shards   = flag.Int("shards", 0, "with -rounds: drive the region-sharded cluster tier with this many spatial shards (0: monolithic batch pipeline)")
		incr     = flag.Bool("incremental", false, "with -rounds: solve through the persistent incremental engine (dirty-component re-solve; bitwise identical rounds for deterministic solvers)")
		chaos    = flag.Bool("chaos", false, "inject seeded deterministic faults into every ladder rung (rehearsal mode; seeded by -seed)")
		chFail   = flag.Float64("chaos-fail", 1.0, "with -chaos: probability a rung solve fails outright")
		chLat    = flag.Duration("chaos-latency", 0, "with -chaos: max injected latency per rung solve")
		chTrunc  = flag.Float64("chaos-trunc", 0, "with -chaos: probability a rung result is truncated to half its pairs")
		scenRef  = flag.String("scenario", "", "run a discrete-event scenario: a built-in name or a JSON spec file (see docs/SCENARIOS.md); supersedes -m/-n/-rounds")
		record   = flag.String("record", "", "with -scenario: write the generated arrival event stream (JSONL) to this file for later bitwise replay")
		replayF  = flag.String("replay", "", "replay a recorded arrival event stream (JSONL) instead of generating one from a spec")
		replaySv = flag.String("replay-solver", "", "with -scenario/-replay: dispatch with this solver instead of the spec's/recorded one")
		cfK      = flag.Int("counterfactual-k", 0, "with -scenario/-replay: per round, also solve this many alternate solvers on the identical instance and report regret (-1: every spec alternate; monolithic only)")
		reportF  = flag.String("report", "", "with -scenario/-replay: write the run report (score, SLO classes, counterfactual regret) as JSON to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var reg *metrics.Registry
	if *metricsF != "" {
		reg = metrics.NewRegistry()
		defer dumpMetrics(*metricsF, reg)
	}
	if reg == nil && (*budget > 0 || *chaos) {
		// The ladder summary printed at exit reads these counters even
		// when no -metrics dump was requested.
		reg = metrics.NewRegistry()
	}
	var chaosCfg *resilience.ChaosConfig
	if *chaos {
		chaosCfg = &resilience.ChaosConfig{
			Seed:         *seed,
			FailRate:     *chFail,
			Latency:      *chLat,
			TruncateRate: *chTrunc,
			Metrics:      reg,
		}
	}
	kind, err := indexKind(*index)
	if err != nil {
		fatal(err)
	}
	if *scenRef != "" || *replayF != "" {
		if *scenRef != "" && *replayF != "" {
			fatal(fmt.Errorf("-scenario and -replay are mutually exclusive (a replay carries its own schedule)"))
		}
		if *data != "" {
			fatal(fmt.Errorf("-scenario/-replay generate their own arrivals; drop -data"))
		}
		par := 0
		if *parallel {
			par = *workers
			if par <= 0 {
				par = -1
			}
		}
		runScenario(ctx, scenarioArgs{
			ref: *scenRef, replay: *replayF, record: *record, solver: *replaySv,
			counterfactualK: *cfK, report: *reportF, tracePath: *traceF,
			reg: reg, parallelism: par, budget: *budget, chaos: chaosCfg,
			incremental: *incr, shards: *shards,
		})
		ladderSummary(reg)
		return
	}
	if *record != "" || *replaySv != "" || *cfK != 0 || *reportF != "" {
		fatal(fmt.Errorf("-record/-replay-solver/-counterfactual-k/-report need -scenario or -replay"))
	}
	if *rounds > 1 {
		if *data != "" {
			fatal(fmt.Errorf("-rounds simulation generates its own arrivals; drop -data"))
		}
		if *shards > 0 {
			simulateShards(ctx, *solver, *m, *n, *seed, *rounds, *shards, reg, *budget, chaosCfg, *incr)
			ladderSummary(reg)
			return
		}
		par := 0
		if *parallel {
			par = *workers
			if par <= 0 {
				par = -1 // batch.Config: negative selects GOMAXPROCS
			}
		}
		simulate(ctx, *solver, *compare, *m, *n, *seed, *rounds, kind, *traceF, reg, par, *budget, chaosCfg, *incr)
		ladderSummary(reg)
		return
	}
	in, err := load(*data, *m, *n, *seed, kind)
	if err != nil {
		fatal(err)
	}
	if *road {
		nw, err := roadnet.NewGrid(roadnet.DefaultGrid())
		if err != nil {
			fatal(err)
		}
		in.Travel = nw.Travel(in.Workers, in.Tasks)
		in.BuildCandidates(kind)
	}
	fmt.Printf("instance: %d workers, %d tasks, B=%d, %d valid pairs\n",
		len(in.Workers), len(in.Tasks), in.B, in.NumValidPairs())
	ub := assign.Upper(in)
	fmt.Printf("UPPER estimate (Eq. 9): %.2f\n\n", ub)

	names := []string{*solver}
	if *compare {
		names = assign.AllNames()
	}
	fmt.Printf("%-8s %12s %10s %8s %10s %10s\n", "solver", "score", "of UPPER", "pairs", "tasks≥B", "time")
	var lastA *model.Assignment
	var lastName string
	for _, name := range names {
		s, err := assign.ByName(name, *seed)
		if err != nil {
			fatal(err)
		}
		if *parallel {
			s = assign.NewParallel(s, assign.ParallelOptions{Workers: *workers, Seed: *seed, Metrics: reg})
		}
		s = assign.Instrument(s, reg)
		var ladder *resilience.Ladder
		if *budget > 0 || chaosCfg != nil {
			rungs := resilience.Chain(s, *seed)
			if chaosCfg != nil {
				rungs = resilience.WithChaos(rungs, *chaosCfg)
			}
			ladder, err = resilience.NewLadder(resilience.Config{Budget: *budget, Metrics: reg}, rungs...)
			if err != nil {
				fatal(err)
			}
		}
		start := time.Now()
		var a *model.Assignment
		var out resilience.Outcome
		if ladder != nil {
			a, out = ladder.SolveBudgeted(ctx, in)
		} else {
			a, err = s.Solve(ctx, in)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
		elapsed := time.Since(start)
		if err := a.Validate(in); err != nil {
			fatal(fmt.Errorf("%s produced an invalid assignment: %w", name, err))
		}
		score := a.TotalScore(in)
		frac := 0.0
		if ub > 0 {
			frac = score / ub * 100
		}
		fmt.Printf("%-8s %12.2f %9.1f%% %8d %10d %10s",
			name, score, frac, a.NumAssigned(), a.CompletedTasks(in), elapsed.Round(time.Millisecond))
		if ladder != nil {
			fmt.Printf("  rung=%s fallbacks=%d", out.Rung, out.Fallbacks)
		}
		fmt.Println()
		lastA, lastName = a, name
	}
	ladderSummary(reg)
	if *svg != "" && lastA != nil {
		title := fmt.Sprintf("%s: score %.2f of UPPER %.2f", lastName, lastA.TotalScore(in), ub)
		if err := viz.SaveAssignment(*svg, in, lastA, viz.Options{Title: title}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svg)
	}
}

// simulate runs the Algorithm 1 simulator: fresh worker/task waves each
// round, carry-over of unserved tasks, busy workers returning after
// service.
func simulate(ctx context.Context, solverName string, compare bool, m, n int, seed int64, rounds int, kind model.IndexKind, tracePath string, reg *metrics.Registry, parallelism int, budget time.Duration, chaosCfg *resilience.ChaosConfig, incremental bool) {
	names := []string{solverName}
	if compare {
		names = assign.AllNames()
	}
	var tw *trace.Writer
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw = trace.NewWriter(f)
	}
	p := workload.Default()
	p.NumWorkers, p.NumTasks = m, n
	universe := m * rounds
	fmt.Printf("Algorithm 1 simulation: %d rounds, %d workers + %d tasks arriving per round\n\n",
		rounds, m, n)
	fmt.Printf("%-8s %12s %12s %10s %10s %12s\n", "solver", "total score", "of UPPER", "dispatched", "expired", "avg batch")
	for _, name := range names {
		s, err := assign.ByName(name, seed)
		if err != nil {
			fatal(err)
		}
		src := &batch.GeneratorSource{
			Model: coop.Synthetic{N: universe, Seed: uint64(seed)},
			WorkersFn: func(round int) []model.Worker {
				ws := p.WithSeed(seed + int64(round)).Workers(float64(round))
				return batch.RoundRobinIDs(ws, round, m, universe)
			},
			TasksFn: func(round int) []model.Task {
				return p.WithSeed(seed + 5000 + int64(round)).Tasks(float64(round))
			},
		}
		res, err := batch.Run(ctx, batch.Config{
			Solver:      s,
			Rounds:      rounds,
			B:           p.B,
			Index:       kind,
			Trace:       tw,
			TraceRun:    name,
			Metrics:     reg,
			Parallelism: parallelism,
			Seed:        seed,
			RoundBudget: budget,
			Chaos:       chaosCfg,
			Incremental: incremental,
		}, src)
		if err != nil {
			fatal(err)
		}
		var avg time.Duration
		for _, b := range res.Batches {
			avg += b.Elapsed
		}
		avg /= time.Duration(len(res.Batches))
		frac := 0.0
		if res.UpperTotal > 0 {
			frac = res.TotalScore / res.UpperTotal * 100
		}
		fmt.Printf("%-8s %12.2f %11.1f%% %10d %10d %12s\n",
			name, res.TotalScore, frac, res.DispatchedTasks, res.ExpiredTasks, avg.Round(time.Microsecond))
	}
}

// scenarioArgs bundles the -scenario/-replay driver inputs.
type scenarioArgs struct {
	ref             string // built-in name or spec file (-scenario)
	replay          string // recorded event stream (-replay)
	record          string
	solver          string // override; "" keeps the spec's/recorded one
	counterfactualK int
	report          string
	tracePath       string
	reg             *metrics.Registry
	parallelism     int
	budget          time.Duration
	chaos           *resilience.ChaosConfig
	incremental     bool
	shards          int
}

// runScenario drives the discrete-event scenario engine: generate (or
// replay) the arrival plan, optionally record it, run it through the
// monolithic or sharded pipeline, and print the score/SLO/regret report.
func runScenario(ctx context.Context, a scenarioArgs) {
	var (
		plan *scenario.Plan
		err  error
	)
	solverName := a.solver
	if a.replay != "" {
		meta, events, rerr := trace.ReadEventsFile(a.replay)
		if rerr != nil {
			fatal(rerr)
		}
		plan, err = scenario.FromEvents(meta, events)
		if err != nil {
			fatal(err)
		}
		if solverName == "" {
			solverName = meta.Solver
		}
		fmt.Printf("replaying %s: scenario %q, %d rounds, %d workers, %d tasks\n",
			a.replay, meta.Scenario, plan.Rounds(), plan.NumWorkers(), plan.NumTasks())
	} else {
		spec, lerr := scenario.Load(a.ref)
		if lerr != nil {
			fatal(lerr)
		}
		plan, err = scenario.Generate(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("scenario %q: %d rounds, %d workers, %d tasks (processes: %s/%s)\n",
			spec.Name, plan.Rounds(), plan.NumWorkers(), plan.NumTasks(),
			spec.Workers.Process, spec.Tasks.Process)
	}
	if solverName == "" {
		solverName = plan.Spec.Solver
	}
	if a.record != "" {
		f, cerr := os.Create(a.record)
		if cerr != nil {
			fatal(cerr)
		}
		meta, events := plan.Events(solverName)
		if werr := trace.WriteEvents(f, meta, events); werr != nil {
			_ = f.Close()
			fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("recorded %d events to %s\n", len(events)+1, a.record)
	}
	var tw *trace.Writer
	if a.tracePath != "" {
		f, cerr := os.Create(a.tracePath)
		if cerr != nil {
			fatal(cerr)
		}
		defer f.Close()
		tw = trace.NewWriter(f)
	}
	rep, err := scenario.Run(ctx, scenario.RunConfig{
		Plan:            plan,
		Solver:          solverName,
		CounterfactualK: a.counterfactualK,
		Parallelism:     a.parallelism,
		Budget:          a.budget,
		Chaos:           a.chaos,
		Incremental:     a.incremental,
		Shards:          a.shards,
		Trace:           tw,
		Metrics:         a.reg,
	})
	if err != nil {
		fatal(err)
	}
	frac := 0.0
	if rep.Upper > 0 {
		frac = rep.Score / rep.Upper * 100
	}
	fmt.Printf("\n%-8s %12s %12s %10s %10s\n", "solver", "total score", "of UPPER", "dispatched", "expired")
	fmt.Printf("%-8s %12.2f %11.1f%% %10d %10d\n", rep.Solver, rep.Score, frac, rep.Dispatched, rep.Expired)
	if rep.Exhausted > 0 {
		fmt.Printf("budget-exhausted rounds: %d\n", rep.Exhausted)
	}
	if rep.SLO != nil {
		fmt.Printf("\nSLO classes:\n%s", rep.SLO.String())
	}
	if cf := rep.Counterfactual; cf != nil {
		fmt.Printf("\ncounterfactuals (chosen %s): %d alternate solves, mean regret %.4f, max %.4f\n",
			cf.Chosen, cf.Solves, cf.MeanRegret, cf.MaxRegret)
		for _, alt := range cf.AltTotals {
			fmt.Printf("  %-8s total score %12.2f (chosen total %.2f)\n", alt.Name, alt.Score, rep.Score)
		}
	}
	if a.report != "" {
		data, merr := json.MarshalIndent(rep, "", " ")
		if merr != nil {
			fatal(merr)
		}
		if werr := os.WriteFile(a.report, append(data, '\n'), 0o644); werr != nil {
			fatal(werr)
		}
		fmt.Printf("wrote report to %s\n", a.report)
	}
}

// simulateShards drives the -rounds arrival stream through the
// region-sharded cluster tier instead of the monolithic batch pipeline.
// Budget-exhausted rounds (every round under -chaos -chaos-fail 1) are
// all-or-nothing no-ops: nothing dispatches, no worker is lost, and the
// next round retries — the rehearsal asserts the registries survive.
func simulateShards(ctx context.Context, solverName string, m, n int, seed int64, rounds, k int, reg *metrics.Registry, budget time.Duration, chaosCfg *resilience.ChaosConfig, incremental bool) {
	if chaosCfg != nil && budget <= 0 {
		fatal(fmt.Errorf("-shards with -chaos needs a -budget (the cluster injects faults into the budgeted ladder)"))
	}
	p := workload.Default()
	p.NumWorkers, p.NumTasks = m, n
	c, err := shard.NewCluster(shard.Config{
		K: k, B: p.B, Metrics: reg, SolveBudget: budget, Chaos: chaosCfg,
		Incremental: incremental,
	})
	if err != nil {
		fatal(err)
	}
	for _, w := range p.WithSeed(seed).Workers(0) {
		if _, err := c.RegisterWorker(w.Loc, w.Speed, w.Radius); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("sharded simulation: %d shards, %d rounds, %d workers, %d tasks arriving per round\n\n",
		k, rounds, m, n)
	var dispatched, expired, exhausted int
	var score float64
	for round := 0; round < rounds; round++ {
		for _, t := range p.WithSeed(seed + 5000 + int64(round)).Tasks(c.Now()) {
			if _, err := c.PostTask(t.Loc, t.Capacity, t.Deadline); err != nil {
				fatal(err)
			}
		}
		res, err := c.RunBatch(ctx, solverName)
		if errors.Is(err, shard.ErrBudgetExhausted) {
			exhausted++
			continue
		}
		if err != nil {
			fatal(err)
		}
		dispatched += res.DispatchedTasks
		expired += res.ExpiredTasks
		score += res.Score
		rated := map[int]bool{}
		for _, pr := range res.Pairs {
			if rated[pr.Task] {
				continue
			}
			rated[pr.Task] = true
			s := 0.5
			if pr.Task%2 == 1 {
				s = 1.0
			}
			if err := c.RateTask(pr.Task, s); err != nil {
				fatal(err)
			}
		}
	}
	st := c.Status()
	fmt.Printf("%-10s %12s %10s %8s %10s %10s\n", "router", "total score", "dispatched", "expired", "exhausted", "workers")
	fmt.Printf("%-10s %12.2f %10d %8d %10d %10d\n",
		st.Router, score, dispatched, expired, exhausted, st.AvailableWorkers+st.BusyWorkers)
	if got := st.AvailableWorkers + st.BusyWorkers; got != m {
		fatal(fmt.Errorf("registry corrupted: %d workers tracked, %d registered", got, m))
	}
}

func load(path string, m, n int, seed int64, kind model.IndexKind) (*model.Instance, error) {
	if path != "" {
		wire, err := dataset.Load(path)
		if err != nil {
			return nil, err
		}
		return wire.ToModel(kind)
	}
	p := workload.Default()
	p.NumWorkers, p.NumTasks = m, n
	p.Seed = seed
	return p.Instance(0, kind)
}

func indexKind(s string) (model.IndexKind, error) {
	switch s {
	case "rtree":
		return model.IndexRTree, nil
	case "grid":
		return model.IndexGrid, nil
	case "linear":
		return model.IndexLinear, nil
	}
	return 0, fmt.Errorf("unknown index %q", s)
}

// ladderSummary prints the run's aggregate ladder counters — fallbacks,
// budget overruns, exhausted (floor) solves, chaos injections — so a
// -budget/-chaos run shows its degradations even without a -metrics dump.
func ladderSummary(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	sum := func(name string) uint64 {
		var total uint64
		for _, c := range snap.Counters {
			if c.Name == name {
				total += c.Value
			}
		}
		return total
	}
	fallbacks := sum(resilience.MetricLadderFallbacks)
	solves := sum(resilience.MetricLadderSolves)
	if solves == 0 {
		return
	}
	fmt.Printf("\nladder: %d solves, %d fallbacks, %d budget overruns, %d exhausted (floor), %d chaos injections\n",
		solves, fallbacks, sum(resilience.MetricLadderOverruns),
		sum(resilience.MetricLadderExhausted), sum(resilience.MetricChaosInjections))
}

// dumpMetrics writes the registry snapshot as indented JSON.
func dumpMetrics(path string, reg *metrics.Registry) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "casc-sim: %v\n", err)
	os.Exit(1)
}

// casc-gen generates CA-SC datasets to JSON: synthetic UNIF/SKEW batches
// (§VI-C) or a Meetup-style city sample (§VI-B substitute). The output is
// consumable by casc-sim and by dataset.Load.
//
// Usage:
//
//	casc-gen -kind unif -m 1000 -n 500 -out batch.json
//	casc-gen -kind skew -m 500 -n 200 -seed 7 -out skew.json
//	casc-gen -kind meetup -m 1000 -n 500 -out meetup.json
package main

import (
	"flag"
	"fmt"
	"os"

	"casc/internal/checkin"
	"casc/internal/coop"
	"casc/internal/dataset"
	"casc/internal/meetup"
	"casc/internal/model"
	"casc/internal/stats"
	"casc/internal/workload"
)

func main() {
	var (
		kind = flag.String("kind", "unif", "dataset kind: unif|skew|meetup|checkin")
		m    = flag.Int("m", 1000, "number of workers")
		n    = flag.Int("n", 500, "number of tasks")
		cap_ = flag.Int("capacity", 5, "task capacity a_j")
		b    = flag.Int("b", 3, "least required workers B")
		tau  = flag.Float64("tau", 3, "remaining time of tasks")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	wire, err := generate(*kind, *m, *n, *cap_, *b, *tau, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casc-gen: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		if err := wire.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "casc-gen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := wire.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "casc-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d workers, %d tasks\n", *out, *m, *n)
}

func generate(kind string, m, n, capacity, b int, tau float64, seed int64) (*dataset.Instance, error) {
	switch kind {
	case "unif", "skew":
		p := workload.Default()
		p.NumWorkers, p.NumTasks = m, n
		p.Capacity, p.B = capacity, b
		p.RemainingTime = tau
		p.Seed = seed
		if kind == "skew" {
			p.Dist = workload.SKEW
		}
		in, err := p.Instance(0, model.IndexRTree)
		if err != nil {
			return nil, err
		}
		// Synthetic quality is a function, not data; snapshot it densely so
		// the file is self-contained. Guard against absurd matrix sizes.
		if m > 4000 {
			return nil, fmt.Errorf("dense quality snapshot too large for m=%d (max 4000)", m)
		}
		return dataset.FromModel(in, nil), nil
	case "checkin":
		tr := checkin.Generate(checkin.Config{
			NumUsers: max(m*3, 300), NumVenues: max(n, 100), VisitsPerUser: 20,
			RevisitBias: 0.6, Neighbourhoods: 8, Seed: seed,
		})
		sp := checkin.DefaultSample()
		sp.NumWorkers, sp.NumTasks = m, n
		sp.Capacity, sp.B = capacity, b
		sp.RemainingTime = tau
		in, err := tr.Sample(stats.NewRNG(seed), sp, 0)
		if err != nil {
			return nil, err
		}
		// The co-visit model has no compact wire form; snapshot densely.
		if m > 4000 {
			return nil, fmt.Errorf("dense quality snapshot too large for m=%d (max 4000)", m)
		}
		return dataset.FromModel(in, nil), nil
	case "meetup":
		cfg := meetup.Default()
		cfg.Seed = seed
		if m > cfg.NumUsers || n > cfg.NumEvents {
			return nil, fmt.Errorf("meetup city has %d users / %d events", cfg.NumUsers, cfg.NumEvents)
		}
		city := meetup.Generate(cfg)
		sp := meetup.DefaultSample()
		sp.NumWorkers, sp.NumTasks = m, n
		sp.Capacity, sp.B = capacity, b
		sp.RemainingTime = tau
		in, err := city.Sample(stats.NewRNG(seed), sp, 0)
		if err != nil {
			return nil, err
		}
		// The instance's quality is the per-sample Jaccard model (possibly
		// behind a memo layer); persist the group lists so it reconstructs
		// exactly.
		q := in.Quality
		if c, ok := q.(*coop.Cached); ok {
			q = c.Unwrap()
		}
		groups := q.(*coop.Jaccard).Groups
		return dataset.FromModel(in, groups), nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want unif|skew|meetup|checkin)", kind)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Command casc-lint runs the CASC static-analysis suite (internal/analysis)
// over the module: ten stdlib-only analyzers enforcing the determinism,
// cancellation, memory-ownership and metrics invariants the solver stack
// depends on.
//
// Usage:
//
//	casc-lint [-json] [-root dir] [-rules r1,r2] [pattern ...]
//
// Patterns are ./... (the default, whole module) or package directories
// like ./internal/assign or ./internal/... — the module is always analyzed
// whole (cross-package checks need it) and patterns filter which packages'
// findings are reported. Exit status: 0 clean, 1 findings, 2 failure.
//
// Findings are suppressed inline with a justified comment on the flagged
// line or the line above:
//
//	//casclint:ignore <rule>[,<rule>] <reason>
//
// The reason is mandatory; a bare suppression is itself reported, as is a
// suppression whose rule never fires on the covered lines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"casc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("casc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	rootFlag := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "casc-lint:", err)
		return 2
	}

	if *list {
		for _, r := range analysis.AllRules() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	root := *rootFlag
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return fail(err)
		}
		if root, err = analysis.FindModuleRoot(wd); err != nil {
			return fail(err)
		}
	}

	rules, err := selectRules(*rulesFlag)
	if err != nil {
		return fail(err)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		return fail(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return fail(err)
	}
	diags := analysis.Run(pkgs, analysis.Options{Rules: rules})
	diags = filterPatterns(root, diags, fs.Args())
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, diags); err != nil {
			return fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "casc-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func selectRules(spec string) ([]*analysis.Rule, error) {
	if spec == "" {
		return nil, nil // Run defaults to all
	}
	byName := make(map[string]*analysis.Rule)
	for _, r := range analysis.AllRules() {
		byName[r.Name] = r
	}
	var rules []*analysis.Rule
	for _, name := range strings.Split(spec, ",") {
		r, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q; the suite has:\n%s", name, ruleCatalog())
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// ruleCatalog renders every rule's name and one-line doc, one per line —
// the unknown-rule error shows what each candidate actually checks rather
// than a bare name list.
func ruleCatalog() string {
	var b strings.Builder
	for _, r := range analysis.AllRules() {
		fmt.Fprintf(&b, "  %-12s %s\n", r.Name, r.Doc)
	}
	return strings.TrimRight(b.String(), "\n")
}

// filterPatterns keeps diagnostics under the requested package patterns.
// "./..." (or no patterns) keeps everything; "./x" keeps package x only;
// "./x/..." keeps the subtree.
func filterPatterns(root string, diags []analysis.Diagnostic, patterns []string) []analysis.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	keepAll := false
	type match struct {
		dir     string
		subtree bool
	}
	var matches []match
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			keepAll = true
			continue
		}
		subtree := false
		if strings.HasSuffix(pat, "/...") {
			subtree = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		matches = append(matches, match{dir: filepath.Clean(pat), subtree: subtree})
	}
	if keepAll {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = d.File
		}
		dir := filepath.Dir(rel)
		for _, m := range matches {
			if dir == m.dir || (m.subtree && strings.HasPrefix(dir+"/", m.dir+"/")) {
				kept = append(kept, d)
				break
			}
		}
	}
	return kept
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"casc/internal/analysis"
)

// TestListFlag verifies -list prints every rule with its one-line doc.
func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run -list: exit %d, stderr %q", code, errb.String())
	}
	for _, r := range analysis.AllRules() {
		if !strings.Contains(out.String(), r.Name) {
			t.Errorf("-list output missing rule name %q", r.Name)
		}
		if !strings.Contains(out.String(), r.Doc) {
			t.Errorf("-list output missing doc for %q", r.Name)
		}
	}
}

// TestUnknownRule verifies the -rules error names every rule WITH its doc
// string, so the operator can pick the right one without a second command.
func TestUnknownRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Fatalf("run -rules nosuchrule: exit %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown rule "nosuchrule"`) {
		t.Fatalf("stderr %q does not name the unknown rule", msg)
	}
	for _, r := range analysis.AllRules() {
		if !strings.Contains(msg, r.Name) {
			t.Errorf("unknown-rule error missing rule name %q", r.Name)
		}
		if !strings.Contains(msg, r.Doc) {
			t.Errorf("unknown-rule error missing doc for %q", r.Name)
		}
	}
}

// TestRulesSubsetJSON runs one real subset over the module and checks the
// -json document parses into the stable schema. The tree is lint-clean, so
// the run must exit 0 with an empty (but present) diagnostics array.
func TestRulesSubsetJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "ctxloop,lockbalance", "-root", "../..", "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errb.String(), out.String())
	}
	var rep struct {
		Version     int                   `json:"version"`
		Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("parsing -json output: %v", err)
	}
	if rep.Version != 1 {
		t.Fatalf("schema version %d, want 1", rep.Version)
	}
	if rep.Diagnostics == nil {
		t.Fatal("diagnostics must marshal as an array, not null")
	}
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("tree should be clean under ctxloop+lockbalance, got %v", rep.Diagnostics)
	}
}

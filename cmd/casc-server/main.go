// casc-server runs the CA-SC spatial crowdsourcing platform as an HTTP
// service: workers register, requesters post tasks and rate results, and
// POST /batch triggers a cooperation-aware assignment round with any of the
// paper's solvers. Ratings feed the Equation 1 quality estimator, so the
// platform's assignments improve as history accumulates. With -snapshot the
// platform state (including the rating history) is loaded at startup and
// saved on shutdown.
//
// With -shards N (N >= 1) the process serves the region-sharded cluster
// tier instead of the single platform: the unit square is split into N
// spatial shards, new workers and tasks are placed by the -router policy,
// and batch rounds decompose into validity-graph components pinned to the
// shard owning their lowest cell. -admission enables token-bucket load
// shedding on the mutating endpoints. -snapshot is not supported in
// sharded mode.
//
// Usage:
//
//	casc-server -addr :8080 -b 3 -snapshot state.json
//	casc-server -addr :8080 -b 3 -shards 8 -router region -admission 200
//
//	curl -XPOST localhost:8080/workers -d '{"x":0.5,"y":0.5,"speed":0.05,"radius":0.2}'
//	curl -XPOST localhost:8080/tasks   -d '{"x":0.5,"y":0.5,"capacity":3,"deadline":5}'
//	curl -XPOST localhost:8080/batch   -d '{"solver":"GT+ALL"}'
//	curl -XPOST localhost:8080/ratings -d '{"task_id":0,"score":0.9}'
//	curl -XPUT  localhost:8080/workers/0 -d '{"x":0.7,"y":0.7,"speed":-1,"radius":-1}'
//	curl localhost:8080/status
//	curl localhost:8080/metrics
//	curl localhost:8080/snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"casc/internal/server"
	"casc/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		b        = flag.Int("b", 3, "least required workers per task")
		alpha    = flag.Float64("alpha", 0.5, "Equation 1 mixing parameter α")
		omega    = flag.Float64("omega", 0.5, "Equation 1 base quality ω")
		snapshot = flag.String("snapshot", "", "state file: loaded at startup, saved on shutdown")
		pprofF   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		parallel = flag.Bool("parallel", false, "decompose each batch into connected components and solve them concurrently")
		workers  = flag.Int("workers", 0, "component worker pool under -parallel (0: GOMAXPROCS)")
		budget   = flag.Duration("budget", 0, "per-request solve deadline for POST /batch; exhaustion returns 503 + Retry-After")
		shards   = flag.Int("shards", 0, "spatial shard count; 0 serves the single unsharded platform")
		routerF  = flag.String("router", "region", "shard placement policy: region, round-robin or least-loaded")
		admitF   = flag.Float64("admission", 0, "token-bucket admission rate (requests/s) on mutating endpoints; 0 disables")
		admitB   = flag.Int("admission-burst", 0, "token-bucket burst capacity (0: ceil of -admission)")
		incr     = flag.Bool("incremental", false, "with -shards: maintain the candidate graph in the persistent incremental engine across batches (bitwise identical results)")
	)
	flag.Parse()

	var handler http.Handler
	var p *server.Platform
	if *shards > 0 {
		if *snapshot != "" {
			log.Fatal("-snapshot is not supported with -shards")
		}
		policy, err := shard.NewPolicy(*routerF)
		if err != nil {
			log.Fatal(err)
		}
		c, err := shard.NewCluster(shard.Config{
			K: *shards, B: *b, Alpha: *alpha, Omega: *omega,
			Router: policy, AdmissionRate: *admitF, AdmissionBurst: *admitB,
			EnablePprof: *pprofF, SolveBudget: *budget, Incremental: *incr,
		})
		if err != nil {
			log.Fatal(err)
		}
		handler = c.Handler()
	} else {
		if *incr {
			log.Fatal("-incremental requires -shards (the unsharded platform solves single batches with no cross-round state)")
		}
		parallelism := 0
		if *parallel {
			parallelism = *workers
			if parallelism <= 0 {
				parallelism = -1 // server.Config: negative selects GOMAXPROCS
			}
		}
		var err error
		p, err = buildPlatform(*snapshot, server.Config{B: *b, Alpha: *alpha, Omega: *omega, EnablePprof: *pprofF, Parallelism: parallelism, SolveBudget: *budget})
		if err != nil {
			log.Fatal(err)
		}
		handler = p.Handler()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *shards > 0 {
		fmt.Printf("casc-server listening on %s (B=%d, α=%g, ω=%g, shards=%d, router=%s)\n",
			*addr, *b, *alpha, *omega, *shards, *routerF)
	} else {
		fmt.Printf("casc-server listening on %s (B=%d, α=%g, ω=%g)\n", *addr, *b, *alpha, *omega)
	}

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}

	if *snapshot != "" {
		if err := p.Snapshot().SaveFile(*snapshot); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		fmt.Printf("state saved to %s\n", *snapshot)
	}
}

func buildPlatform(path string, cfg server.Config) (*server.Platform, error) {
	if path != "" {
		if snap, err := server.LoadSnapshotFile(path); err == nil {
			p, err := server.Restore(snap, cfg)
			if err != nil {
				return nil, fmt.Errorf("restoring %s: %w", path, err)
			}
			fmt.Printf("restored state from %s (%d batches, score %.2f)\n",
				path, snap.Batches, snap.TotalScore)
			return p, nil
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
	}
	return server.NewPlatform(cfg)
}

package casc

import (
	"context"
	"testing"
)

// TestReproductionShapes is the repository's claim-level smoke test: the
// qualitative findings recorded in EXPERIMENTS.md must hold on a
// moderate-scale run of the harness, not just at paper scale. If a change
// to any solver or workload flips one of the paper's headline shapes, this
// test is the tripwire.
func TestReproductionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale reproduction check")
	}
	ctx := context.Background()
	opt := ExperimentOptions{
		Rounds:  2,
		Seed:    12,
		Scale:   0.2,
		Solvers: []string{"TPG", "GT", "GT+ALL", "MFLOW", "RAND"},
	}

	// Figure 2 shape: GT ≥ TPG ≫ MFLOW/RAND at every capacity; all within
	// UPPER; capacity growth never hurts materially.
	capSeries, err := RunExperiment(ctx, "capacity", opt)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, pt := range capSeries.Points {
		tpg, _ := capSeries.Score(pt.Label, "TPG")
		gt, _ := capSeries.Score(pt.Label, "GT")
		gtAll, _ := capSeries.Score(pt.Label, "GT+ALL")
		mflow, _ := capSeries.Score(pt.Label, "MFLOW")
		rnd, _ := capSeries.Score(pt.Label, "RAND")
		if gt < tpg-1e-9 {
			t.Errorf("capacity %s: GT %v below TPG %v", pt.Label, gt, tpg)
		}
		if tpg < 1.1*mflow || tpg < 1.1*rnd {
			t.Errorf("capacity %s: TPG %v not clearly above MFLOW %v / RAND %v",
				pt.Label, tpg, mflow, rnd)
		}
		if gtAll < 0.95*gt {
			t.Errorf("capacity %s: GT+ALL %v lost more than 5%% of GT %v", pt.Label, gtAll, gt)
		}
		if gt > pt.Upper+1e-6 {
			t.Errorf("capacity %s: GT above UPPER", pt.Label)
		}
		if i > 0 && gt < 0.95*prev {
			t.Errorf("capacity %s: score dropped sharply when capacity grew", pt.Label)
		}
		prev = gt
	}

	// Figure 5 shape: more remaining time never hurts materially, and the
	// τ=1 point is clearly below the τ=3 point (the paper's knee).
	dlSeries, err := RunExperiment(ctx, "deadline", opt)
	if err != nil {
		t.Fatal(err)
	}
	gt1, _ := dlSeries.Score("1", "GT")
	gt3, _ := dlSeries.Score("3", "GT")
	if gt3 <= gt1 {
		t.Errorf("deadline: GT at τ=3 (%v) not above τ=1 (%v)", gt3, gt1)
	}
}

package casc_test

import (
	"context"
	"fmt"

	"casc"
)

// The smallest end-to-end use: build an instance by hand (the paper's
// Example 1), solve it, inspect the result.
func Example() {
	q := casc.NewQualityMatrix(4)
	q.Set(0, 1, 0.05)
	q.Set(2, 3, 0.05)
	q.Set(0, 3, 0.50)
	q.Set(1, 2, 0.40)
	inst := &casc.Instance{
		Workers: []casc.Worker{
			{ID: 1, Loc: casc.Pt(0.25, 0.25), Speed: 1, Radius: 0.15},
			{ID: 2, Loc: casc.Pt(0.45, 0.45), Speed: 1, Radius: 0.9},
			{ID: 3, Loc: casc.Pt(0.55, 0.55), Speed: 1, Radius: 0.9},
			{ID: 4, Loc: casc.Pt(0.35, 0.35), Speed: 1, Radius: 0.9},
		},
		Tasks: []casc.Task{
			{ID: 1, Loc: casc.Pt(0.3, 0.3), Capacity: 2, Deadline: 10},
			{ID: 2, Loc: casc.Pt(0.7, 0.7), Capacity: 2, Deadline: 10},
		},
		Quality: q,
		B:       2,
	}
	inst.BuildCandidates(casc.IndexRTree)

	a, err := casc.NewGT(casc.GTOptions{}).Solve(context.Background(), inst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("score %.1f\n", a.TotalScore(inst))
	for _, p := range a.Pairs() {
		fmt.Printf("w%d -> t%d\n", inst.Workers[p.Worker].ID, inst.Tasks[p.Task].ID)
	}
	// Output:
	// score 1.8
	// w1 -> t1
	// w4 -> t1
	// w2 -> t2
	// w3 -> t2
}

// Workloads generate reproducible Table II instances.
func ExampleWorkloadParams() {
	params := casc.DefaultWorkload()
	params.NumWorkers, params.NumTasks = 100, 40
	params.Seed = 42

	inst, err := params.Instance(0, casc.IndexRTree)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(inst.Workers), "workers,", len(inst.Tasks), "tasks, B =", inst.B)
	// Output:
	// 100 workers, 40 tasks, B = 3
}

// The Equation 1 estimator blends a prior with observed ratings.
func ExampleNewQualityHistory() {
	h := casc.NewQualityHistory(3, 0.5, 0.5)
	fmt.Printf("before any rating: %.2f\n", h.Quality(0, 1))
	h.Record(0, 1, 1.0) // a requester rated their shared task 1.0
	fmt.Printf("after one great rating: %.2f\n", h.Quality(0, 1))
	// Output:
	// before any rating: 0.50
	// after one great rating: 0.75
}

// UPPER (Equation 9) bounds every achievable assignment score.
func ExampleUpper() {
	params := casc.DefaultWorkload()
	params.NumWorkers, params.NumTasks = 100, 40
	params.Seed = 42
	inst, _ := params.Instance(0, casc.IndexRTree)

	a, _ := casc.NewTPG().Solve(context.Background(), inst)
	fmt.Println(a.TotalScore(inst) <= casc.Upper(inst))
	// Output:
	// true
}

// Online mode assigns each worker immediately on arrival.
func ExampleRunOnline() {
	params := casc.DefaultWorkload()
	params.NumWorkers, params.NumTasks = 100, 40
	params.Seed = 42
	inst, _ := params.Instance(0, casc.IndexRTree)

	online := casc.RunOnline(inst, casc.OnlineGreedy{})
	batch, _ := casc.NewGT(casc.GTOptions{}).Solve(context.Background(), inst)
	fmt.Println("batch beats online:", batch.TotalScore(inst) >= online.TotalScore(inst))
	// Output:
	// batch beats online: true
}

// Wi-Fi survey — the paper's opening example ("collecting the Wi-Fi signal
// strength in one building") with the Equation 1 feedback loop closed.
//
// A campus has a set of buildings; surveying one building is a spatial task
// that needs three workers to finish before a deadline. Survey crews that
// cooperate well produce better coverage maps, so the requester's ratings
// depend on the measured cooperation quality of the crew — and those
// ratings feed the platform's Equation 1 estimator, improving the next
// day's assignments. The example runs several survey days and shows the
// average delivered quality climbing as the platform learns who works well
// together.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"casc"
)

const (
	numSurveyors = 36
	numBuildings = 12
	days         = 12
)

func main() {
	r := rand.New(rand.NewSource(7))

	// The surveyors' true (hidden) affinities: colleagues from the same
	// company cooperate well, strangers poorly. The platform cannot see
	// this matrix — it only ever observes ratings.
	company := make([]int, numSurveyors)
	for i := range company {
		company[i] = r.Intn(5)
	}
	trueQ := func(i, k int) float64 {
		if company[i] == company[k] {
			return 0.9
		}
		return 0.3
	}

	// The platform's estimator starts from the uninformed prior ω = 0.5.
	history := casc.NewQualityHistory(numSurveyors, 0.5, 0.5)

	workers := make([]casc.Worker, numSurveyors)
	for i := range workers {
		workers[i] = casc.Worker{
			ID:     i,
			Loc:    casc.Pt(r.Float64(), r.Float64()),
			Speed:  0.1,
			Radius: 0.6,
		}
	}

	fmt.Println("day  avg true crew quality  estimator error")
	for day := 0; day < days; day++ {
		in := &casc.Instance{
			Workers: workers,
			Quality: history,
			B:       3,
		}
		for j := 0; j < numBuildings; j++ {
			in.Tasks = append(in.Tasks, casc.Task{
				ID:       day*numBuildings + j,
				Loc:      casc.Pt(r.Float64(), r.Float64()),
				Capacity: 3,
				Deadline: 8,
			})
		}
		in.BuildCandidates(casc.IndexRTree)

		a, err := casc.NewGT(casc.GTOptions{LUB: true}).Solve(context.Background(), in)
		if err != nil {
			log.Fatal(err)
		}

		// Each surveyed building gets rated by the requester according to
		// the crew's TRUE cooperation, and the rating flows back into the
		// platform's history (Equation 1).
		var dayTrue float64
		crews := 0
		for _, ws := range a.TaskWorkers {
			if len(ws) < in.B {
				continue
			}
			var crewQ float64
			pairs := 0
			for x := 0; x < len(ws); x++ {
				for y := x + 1; y < len(ws); y++ {
					crewQ += trueQ(ws[x], ws[y])
					pairs++
				}
			}
			crewQ /= float64(pairs)
			history.RecordGroup(ws, crewQ) // the requester's rating
			dayTrue += crewQ
			crews++
		}
		fmt.Printf("%3d  %21.3f  %15.3f\n",
			day+1, dayTrue/float64(crews), estimatorError(history, trueQ))
	}
	fmt.Println("\nthe platform discovers the hidden company structure from ratings alone:")
	fmt.Printf("est q(same company 0,?): %.2f   est q(cross company): %.2f\n",
		avgSame(history, company, true), avgSame(history, company, false))
}

// estimatorError is the mean absolute error of the platform's estimate over
// all pairs with shared history.
func estimatorError(h *casc.QualityHistory, trueQ func(int, int) float64) float64 {
	var sum float64
	n := 0
	for i := 0; i < numSurveyors; i++ {
		for k := i + 1; k < numSurveyors; k++ {
			if h.SharedTasks(i, k) == 0 {
				continue
			}
			sum += abs(h.Quality(i, k) - trueQ(i, k))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func avgSame(h *casc.QualityHistory, company []int, same bool) float64 {
	var sum float64
	n := 0
	for i := 0; i < numSurveyors; i++ {
		for k := i + 1; k < numSurveyors; k++ {
			if (company[i] == company[k]) != same || h.SharedTasks(i, k) == 0 {
				continue
			}
			sum += h.Quality(i, k)
			n++
		}
	}
	if n == 0 {
		return 0.5
	}
	return sum / float64(n)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

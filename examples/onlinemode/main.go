// Online vs. batch — what the paper's batch-based framework buys.
//
// The paper's related work (§VII) contrasts two server-assigned-task modes:
// *online*, where each arriving worker must be assigned immediately and
// irrevocably, and *batch*, where the platform periodically optimizes over
// everyone currently available (the mode CA-SC adopts). This example runs
// both on identical instances: workers trickle in over the batch window,
// the online policies commit one by one, and batch GT gets to re-optimize
// the whole pool at the window's end. The cooperation score gap is the
// price of immediacy.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"casc"
)

func main() {
	ctx := context.Background()
	const trials = 10

	sums := map[string]float64{}
	var upperSum float64
	for trial := 0; trial < trials; trial++ {
		inst := makeInstance(int64(trial))
		upperSum += casc.Upper(inst)

		// Online policies: workers arrive in Arrive order.
		sums["online greedy"] += casc.RunOnline(inst, casc.OnlineGreedy{}).TotalScore(inst)
		sums["online threshold 0.3"] += casc.RunOnline(inst, casc.OnlineThreshold{Theta: 0.3}).TotalScore(inst)
		sums["online random"] += casc.RunOnline(inst,
			casc.OnlineRandom{Rng: rand.New(rand.NewSource(int64(trial)))}).TotalScore(inst)

		// Batch mode: the same pool, optimized at once.
		for _, name := range []string{"TPG", "GT"} {
			s, err := casc.SolverByName(name, int64(trial))
			if err != nil {
				log.Fatal(err)
			}
			a, err := s.Solve(ctx, inst)
			if err != nil {
				log.Fatal(err)
			}
			sums["batch "+name] += a.TotalScore(inst)
		}
	}

	fmt.Printf("average total cooperation score over %d instances\n", trials)
	fmt.Printf("(300 workers arriving one by one, 100 tasks, B=3)\n\n")
	order := []string{"batch GT", "batch TPG", "online greedy", "online threshold 0.3", "online random"}
	batchGT := sums["batch GT"]
	for _, name := range order {
		fmt.Printf("%-22s %9.2f   (%.0f%% of batch GT)\n",
			name, sums[name]/trials, sums[name]/batchGT*100)
	}
	fmt.Printf("%-22s %9.2f\n", "UPPER estimate", upperSum/trials)
	fmt.Println("\nthe batch framework's advantage is exactly the reordering freedom the")
	fmt.Println("online mode gives up: early arrivals lock in mediocre groups.")
}

func makeInstance(seed int64) *casc.Instance {
	r := rand.New(rand.NewSource(seed + 1000))
	inst := &casc.Instance{
		Quality: casc.QualitySynthetic{N: 300, Seed: uint64(seed) + 7},
		B:       3,
		Now:     1, // the batch moment: everyone has arrived by now
	}
	for i := 0; i < 300; i++ {
		inst.Workers = append(inst.Workers, casc.Worker{
			ID:     i,
			Loc:    casc.Pt(r.Float64(), r.Float64()),
			Speed:  0.02 + r.Float64()*0.06,
			Radius: 0.1 + r.Float64()*0.1,
			Arrive: r.Float64(), // staggered arrivals within the window
		})
	}
	for j := 0; j < 100; j++ {
		inst.Tasks = append(inst.Tasks, casc.Task{
			ID:       j,
			Loc:      casc.Pt(r.Float64(), r.Float64()),
			Capacity: 5,
			Deadline: 4,
		})
	}
	inst.BuildCandidates(casc.IndexRTree)
	return inst
}

// Quickstart: generate one Table II default batch, solve it with every
// approach from the paper, and compare against the UPPER bound.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"casc"
)

func main() {
	ctx := context.Background()

	// One synthetic batch at Table II defaults, scaled down to run in
	// well under a second: 300 workers, 120 tasks, B = 3, a_j = 5.
	params := casc.DefaultWorkload()
	params.NumWorkers = 300
	params.NumTasks = 120
	params.Seed = 7

	inst, err := params.Instance(0, casc.IndexRTree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d workers, %d tasks, %d valid worker-and-task pairs\n",
		len(inst.Workers), len(inst.Tasks), inst.NumValidPairs())
	fmt.Printf("UPPER bound on total cooperation score (Eq. 9): %.2f\n\n", casc.Upper(inst))

	for _, name := range casc.AllSolverNames() {
		solver, err := casc.SolverByName(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		a, err := solver.Solve(ctx, inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s score %8.2f  completed tasks %3d  in %s\n",
			name, a.TotalScore(inst), a.CompletedTasks(inst), time.Since(start).Round(time.Microsecond))
	}
}

// Citysim: a day of spatial crowdsourcing over a synthetic Meetup-style
// city, run through the batch-based framework of Algorithm 1.
//
// A city of users (potential workers) and events (tasks) is generated once.
// Every hour a fresh wave of workers comes online and new tasks are posted;
// tasks that fail to gather B workers retry until their deadlines pass,
// dispatched workers rejoin the pool after travelling to the task and
// performing it. The same day is replayed with each solver so their
// end-to-end behaviour — not just single-batch quality — can be compared.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"casc"
)

const (
	rounds         = 12 // one simulated "day" of hourly batches
	workersPerWave = 150
	tasksPerWave   = 40
)

func main() {
	cfg := casc.DefaultMeetup()
	cfg.NumUsers, cfg.NumEvents, cfg.NumGroups = 1500, 600, 300
	city := casc.GenerateMeetup(cfg)
	quality := city.Quality()

	fmt.Printf("city: %d users, %d events, %d groups\n", cfg.NumUsers, cfg.NumEvents, cfg.NumGroups)
	fmt.Printf("simulating %d hourly batches, %d workers and %d tasks per wave\n\n",
		rounds, workersPerWave, tasksPerWave)

	fmt.Printf("%-8s %12s %12s %12s %12s\n", "solver", "total score", "dispatched", "expired", "of UPPER")
	for _, name := range []string{"TPG", "GT", "GT+ALL", "MFLOW", "RAND"} {
		solver, err := casc.SolverByName(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := casc.Simulate(context.Background(), casc.BatchConfig{
			Solver:          solver,
			Rounds:          rounds,
			B:               3,
			ServiceDuration: 1.5, // tasks take 1.5 hours once the group arrives
		}, newDaySource(city, quality))
		if err != nil {
			log.Fatal(err)
		}
		frac := 0.0
		if res.UpperTotal > 0 {
			frac = res.TotalScore / res.UpperTotal * 100
		}
		fmt.Printf("%-8s %12.2f %12d %12d %11.1f%%\n",
			name, res.TotalScore, res.DispatchedTasks, res.ExpiredTasks, frac)
	}
}

// daySource replays the same arrival sequence for every solver: round r
// samples deterministic user and event waves from the city.
type daySource struct {
	city    *casc.MeetupCity
	quality casc.QualityModel
}

func newDaySource(city *casc.MeetupCity, quality casc.QualityModel) *daySource {
	return &daySource{city: city, quality: quality}
}

func (d *daySource) Quality() casc.QualityModel { return d.quality }

func (d *daySource) WorkersAt(round int) []casc.Worker {
	r := rand.New(rand.NewSource(int64(round) + 1))
	ws := make([]casc.Worker, 0, workersPerWave)
	seen := map[int]bool{}
	for len(ws) < workersPerWave {
		u := r.Intn(len(d.city.UserLocs))
		if seen[u] {
			continue
		}
		seen[u] = true
		ws = append(ws, casc.Worker{
			ID:     u,
			Loc:    d.city.UserLocs[u],
			Speed:  0.01 + r.Float64()*0.04,
			Radius: 0.05 + r.Float64()*0.05,
			Arrive: float64(round),
		})
	}
	return ws
}

func (d *daySource) TasksAt(round int) []casc.Task {
	r := rand.New(rand.NewSource(int64(round) + 1001))
	ts := make([]casc.Task, 0, tasksPerWave)
	for len(ts) < tasksPerWave {
		e := r.Intn(len(d.city.EventLocs))
		ts = append(ts, casc.Task{
			ID:       round*tasksPerWave + len(ts),
			Loc:      d.city.EventLocs[e],
			Capacity: 5,
			Created:  float64(round),
			Deadline: float64(round) + 3,
		})
	}
	return ts
}

// Wedding catering — Example 1 / Figure 1 of the paper, end to end.
//
// Two wedding-catering tasks each need two workers. Four workers are
// available; worker w1's small working area only covers task t1. The
// cooperation qualities (estimated from historical co-operation records
// with Equation 1) make the naive assignment {w1,w2}→t1, {w3,w4}→t2 score
// only 0.2 while the cooperation-aware one {w1,w4}→t1, {w2,w3}→t2 scores
// 1.8 — exactly the numbers in the paper's Example 1.
package main

import (
	"context"
	"fmt"
	"log"

	"casc"
)

func main() {
	// Cooperation qualities from the platform's rating history (Equation 1
	// with α = 0.5, ω = 0.5): each pair worked together before on tasks the
	// requesters rated. Pairs with no shared history keep low scores.
	hist := casc.NewQualityHistory(4, 0.5, 0.5)
	// w1 and w4 cooperated brilliantly twice; w2 and w3 almost as well.
	hist.Record(0, 3, 1.0)
	hist.Record(0, 3, 1.0)
	hist.Record(1, 2, 1.0)
	// w1+w2 and w3+w4 worked together once and it went poorly.
	hist.Record(0, 1, 0.2)
	hist.Record(2, 3, 0.2)

	// For the exact figures of Example 1 we pin the estimated matrix.
	q := casc.NewQualityMatrix(4)
	q.Set(0, 1, 0.05) // q(w1,w2)
	q.Set(2, 3, 0.05) // q(w3,w4)
	q.Set(0, 3, 0.50) // q(w1,w4)
	q.Set(1, 2, 0.40) // q(w2,w3)
	fmt.Println("estimated from history, e.g. q(w1,w4) =", hist.Quality(0, 3))

	inst := &casc.Instance{
		Workers: []casc.Worker{
			{ID: 1, Loc: casc.Pt(0.25, 0.25), Speed: 1, Radius: 0.15}, // w1: small area
			{ID: 2, Loc: casc.Pt(0.45, 0.45), Speed: 1, Radius: 0.9},
			{ID: 3, Loc: casc.Pt(0.55, 0.55), Speed: 1, Radius: 0.9},
			{ID: 4, Loc: casc.Pt(0.35, 0.35), Speed: 1, Radius: 0.9},
		},
		Tasks: []casc.Task{
			{ID: 1, Loc: casc.Pt(0.3, 0.3), Capacity: 2, Deadline: 10}, // t1
			{ID: 2, Loc: casc.Pt(0.7, 0.7), Capacity: 2, Deadline: 10}, // t2
		},
		Quality: q,
		B:       2, // each wedding needs two caterers
	}
	inst.BuildCandidates(casc.IndexRTree)

	// The naive pairing the example warns about.
	naive := newAssignment(inst, [][2]int{{0, 0}, {1, 0}, {2, 1}, {3, 1}})
	fmt.Printf("naive  {w1,w2}→t1 {w3,w4}→t2: total cooperation score %.1f\n", naive.TotalScore(inst))

	// What the cooperation-aware solvers find.
	for _, name := range []string{"TPG", "GT"} {
		solver, err := casc.SolverByName(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		a, err := solver.Solve(context.Background(), inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s found: ", name)
		for _, p := range a.Pairs() {
			fmt.Printf("w%d→t%d ", inst.Workers[p.Worker].ID, inst.Tasks[p.Task].ID)
		}
		fmt.Printf(" score %.1f\n", a.TotalScore(inst))
	}
}

func newAssignment(inst *casc.Instance, pairs [][2]int) *casc.Assignment {
	a := casc.NewAssignment(inst)
	for _, p := range pairs {
		a.Assign(p[0], p[1])
	}
	return a
}

// Roadcity: the paper's Euclidean movement model versus streets.
//
// The paper lets workers travel as the crow flies; in a real city they
// follow roads, so deadline-tight tasks that look reachable straight-line
// become unreachable once detours count. This example builds a perturbed
// street grid over the unit square, runs the same batch under both travel
// models, and reports how candidates, dispatched tasks and cooperation
// scores shrink. It also renders both assignments to SVG so the difference
// is visible (open /tmp/casc-euclid.svg and /tmp/casc-road.svg).
package main

import (
	"context"
	"fmt"
	"log"

	"casc"
)

func main() {
	ctx := context.Background()

	params := casc.DefaultWorkload()
	params.NumWorkers, params.NumTasks = 400, 150
	params.Seed = 11

	euclid, err := params.Instance(0, casc.IndexRTree)
	if err != nil {
		log.Fatal(err)
	}

	net, err := casc.NewRoadGrid(casc.DefaultRoadGrid())
	if err != nil {
		log.Fatal(err)
	}
	road, err := params.Instance(0, casc.IndexRTree)
	if err != nil {
		log.Fatal(err)
	}
	road.Travel = net.Travel(road.Workers, road.Tasks)
	road.BuildCandidates(casc.IndexRTree)

	fmt.Printf("%-22s %12s %12s\n", "", "euclidean", "road network")
	fmt.Printf("%-22s %12d %12d\n", "valid pairs", euclid.NumValidPairs(), road.NumValidPairs())

	solver := casc.NewGT(casc.GTOptions{LUB: true})
	aE, err := solver.Solve(ctx, euclid)
	if err != nil {
		log.Fatal(err)
	}
	aR, err := solver.Solve(ctx, road)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12.2f %12.2f\n", "GT cooperation score", aE.TotalScore(euclid), aR.TotalScore(road))
	fmt.Printf("%-22s %12d %12d\n", "tasks served (≥B)", aE.CompletedTasks(euclid), aR.CompletedTasks(road))
	fmt.Printf("%-22s %12.2f %12.2f\n", "UPPER bound", casc.Upper(euclid), casc.Upper(road))

	for _, out := range []struct {
		path string
		in   *casc.Instance
		a    *casc.Assignment
		name string
	}{
		{"/tmp/casc-euclid.svg", euclid, aE, "Euclidean travel"},
		{"/tmp/casc-road.svg", road, aR, "road-network travel"},
	} {
		title := fmt.Sprintf("%s — score %.1f", out.name, out.a.TotalScore(out.in))
		if err := casc.SaveAssignmentSVG(out.path, out.in, out.a, casc.VizOptions{Title: title}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out.path)
	}
}

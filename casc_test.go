package casc

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	ctx := context.Background()
	params := DefaultWorkload()
	params.NumWorkers, params.NumTasks = 150, 50
	inst, err := params.Instance(0, IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	solver := NewGT(GTOptions{LUB: true, Epsilon: DefaultEpsilon})
	a, err := solver.Solve(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(inst); err != nil {
		t.Fatal(err)
	}
	score := a.TotalScore(inst)
	ub := Upper(inst)
	if score <= 0 || score > ub {
		t.Fatalf("score %v outside (0, UPPER=%v]", score, ub)
	}
}

func TestFacadeSolverRegistry(t *testing.T) {
	for _, name := range AllSolverNames() {
		s, err := SolverByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("%s resolves to %s", name, s.Name())
		}
	}
}

func TestFacadeMeetupAndSimulation(t *testing.T) {
	cfg := DefaultMeetup()
	cfg.NumUsers, cfg.NumEvents, cfg.NumGroups = 300, 120, 60
	city := GenerateMeetup(cfg)
	q := city.Quality()
	if q.NumWorkers() != 300 {
		t.Fatalf("city quality covers %d workers", q.NumWorkers())
	}
	// Tiny simulation through the facade.
	params := DefaultWorkload()
	params.NumWorkers, params.NumTasks = 60, 20
	src := &GeneratorSource{
		Model:     QualitySynthetic{N: 60 * 3, Seed: 9},
		WorkersFn: func(round int) []Worker { return params.WithSeed(int64(round)).Workers(float64(round)) },
		TasksFn:   func(round int) []Task { return params.WithSeed(int64(round) + 50).Tasks(float64(round)) },
	}
	res, err := Simulate(context.Background(), BatchConfig{Solver: NewTPG(), Rounds: 3, B: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("ran %d batches", len(res.Batches))
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(AllExperiments()) != 7 {
		t.Fatalf("expected 7 experiments (Figures 2-8), got %d", len(AllExperiments()))
	}
	s, err := RunExperiment(context.Background(), "capacity",
		ExperimentOptions{Rounds: 1, Scale: 0.05, Solvers: []string{"TPG", "RAND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("capacity sweep has %d points, want 4", len(s.Points))
	}
}

func TestFacadeWrappers(t *testing.T) {
	ctx := context.Background()
	params := DefaultWorkload()
	params.NumWorkers, params.NumTasks = 80, 30
	inst, err := params.Instance(0, IndexGrid)
	if err != nil {
		t.Fatal(err)
	}

	// Solver constructors.
	for _, s := range []Solver{NewTPG(), NewMFlow(), NewRandom(1), NewWST(), NewLocalSearch(nil)} {
		a, err := s.Solve(ctx, inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := a.Validate(inst); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
	ex := NewExact()
	_ = ex.Name()
	pf, err := NewPortfolio([]string{"TPG", "RAND"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Solve(ctx, inst); err != nil {
		t.Fatal(err)
	}

	// Bounds, equilibrium and regret analysis.
	bounds := Bounds(inst)
	if len(bounds) != 80 {
		t.Fatalf("bounds: %d", len(bounds))
	}
	gt := NewGT(GTOptions{})
	a, err := gt.Solve(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	eq := AnalyzeEquilibrium(inst, a, a.CompletedTasks(inst))
	if eq.Achieved > eq.Upper+1e-9 {
		t.Fatal("achieved above upper")
	}
	reg := SummarizeRegret(Regret(inst, a))
	if reg.Max > 1e-9 {
		t.Fatalf("GT regret %v", reg.Max)
	}

	// Quality model constructors.
	dh := NewQualityDecayHistory(5, 0.5, 0.5, 0.1)
	dh.Record(0, 1, 0.9)
	if dh.Quality(0, 1) <= 0.5 {
		t.Fatal("decay history broken")
	}
	cached := NewQualityCache(QualitySynthetic{N: 10, Seed: 2})
	if cached.Quality(1, 2) != cached.Quality(2, 1) {
		t.Fatal("cache asymmetric")
	}
	if cached.NumWorkers() != 10 {
		t.Fatal("cache NumWorkers")
	}

	// Road network + viz + trace wrappers.
	net, err := NewRoadGrid(DefaultRoadGrid())
	if err != nil {
		t.Fatal(err)
	}
	roadInst, _ := params.Instance(0, IndexRTree)
	roadInst.Travel = net.Travel(roadInst.Workers, roadInst.Tasks)
	roadInst.BuildCandidates(IndexRTree)
	if roadInst.NumValidPairs() > inst.NumValidPairs() {
		t.Fatal("road travel grew candidates")
	}
	var svg bytes.Buffer
	if err := RenderAssignment(&svg, inst, a, VizOptions{Title: "facade"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Fatal("no svg output")
	}
	path := filepath.Join(t.TempDir(), "a.svg")
	if err := SaveAssignmentSVG(path, inst, a, VizOptions{}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Append(TraceRecord{Run: "x", Solver: "GT", Score: 1, Upper: 2}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil || len(recs) != 1 {
		t.Fatalf("trace round trip: %v, %d", err, len(recs))
	}
	sums := SummarizeTrace(recs)
	if len(sums) != 1 || sums[0].Run != "x" {
		t.Fatalf("summaries: %+v", sums)
	}

	// Platform wrapper.
	p, err := NewPlatform(PlatformConfig{B: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterWorker(Pt(0.5, 0.5), 0.1, 0.2); err != nil {
		t.Fatal(err)
	}
	if p.Status().AvailableWorkers != 1 {
		t.Fatal("platform wrapper broken")
	}

	// Meetup sample through the facade.
	cfg := DefaultMeetup()
	cfg.NumUsers, cfg.NumEvents, cfg.NumGroups = 200, 80, 40
	city := GenerateMeetup(cfg)
	sp := DefaultMeetupSample()
	sp.NumWorkers, sp.NumTasks = 50, 20
	mi, err := city.Sample(rand.New(rand.NewSource(1)), sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mi.Validate(); err != nil {
		t.Fatal(err)
	}
}
